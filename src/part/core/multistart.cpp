#include "src/part/core/multistart.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>

#include "src/util/logging.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace vlsipart {

namespace {

constexpr Weight kNoCut = std::numeric_limits<Weight>::max();
constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

/// Thread-local best of the starts one worker executed.  Merging worker
/// bests by lexicographic (cut, index) min reproduces the serial
/// selection rule — lowest start index among the minimum-cut feasible
/// starts — independent of how starts were scheduled.
struct LocalBest {
  Weight cut = kNoCut;
  std::size_t index = kNoIndex;
  std::vector<PartId> parts;

  void offer(Weight c, std::size_t i, const std::vector<PartId>& p) {
    if (c < cut || (c == cut && i < index)) {
      cut = c;
      index = i;
      parts = p;
    }
  }
};

LocalBest merge_bests(std::vector<LocalBest>& bests) {
  LocalBest merged;
  for (LocalBest& b : bests) {
    if (b.index == kNoIndex) continue;
    if (b.cut < merged.cut || (b.cut == merged.cut && b.index < merged.index)) {
      merged.cut = b.cut;
      merged.index = b.index;
      merged.parts = std::move(b.parts);
    }
  }
  return merged;
}

/// One private engine per worker slot; empty when the engine does not
/// support cloning (callers then fall back to the serial path).
std::vector<std::unique_ptr<Bipartitioner>> make_worker_engines(
    const Bipartitioner& partitioner, std::size_t num_workers) {
  std::vector<std::unique_ptr<Bipartitioner>> engines;
  engines.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    auto engine = partitioner.clone();
    if (!engine) return {};
    engines.push_back(std::move(engine));
  }
  return engines;
}

}  // namespace

Weight MultistartResult::min_cut() const {
  Weight best = std::numeric_limits<Weight>::max();
  for (const auto& s : starts) {
    if (s.feasible) best = std::min(best, s.cut);
  }
  if (best == std::numeric_limits<Weight>::max()) {
    // No feasible start: report the raw minimum so tables stay readable.
    for (const auto& s : starts) best = std::min(best, s.cut);
  }
  return best;
}

double MultistartResult::avg_cut() const {
  if (starts.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : starts) sum += static_cast<double>(s.cut);
  return sum / static_cast<double>(starts.size());
}

double MultistartResult::avg_cpu_seconds() const {
  if (starts.empty()) return 0.0;
  return total_cpu_seconds / static_cast<double>(starts.size());
}

Sample MultistartResult::cut_sample() const {
  Sample s;
  s.reserve(starts.size());
  for (const auto& r : starts) s.add(static_cast<double>(r.cut));
  return s;
}

Sample MultistartResult::time_sample() const {
  Sample s;
  s.reserve(starts.size());
  for (const auto& r : starts) s.add(r.cpu_seconds);
  return s;
}

MultistartResult run_multistart(const PartitionProblem& problem,
                                Bipartitioner& partitioner,
                                std::size_t num_starts, std::uint64_t seed,
                                std::size_t num_threads) {
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(num_threads, num_starts));
  std::vector<std::unique_ptr<Bipartitioner>> engines;
  if (workers > 1) engines = make_worker_engines(partitioner, workers);

  MultistartResult result;
  WallTimer wall;
  Rng base(seed);

  if (engines.empty()) {
    // Serial path (also the fallback for non-clonable engines).
    const UpdateWork work_before = partitioner.update_work();
    result.starts.reserve(num_starts);
    std::vector<PartId> parts;
    Weight best = kNoCut;
    for (std::size_t i = 0; i < num_starts; ++i) {
      Rng rng = base.fork(i);
      ThreadCpuTimer timer;
      const Weight cut = partitioner.run(problem, rng, parts);
      StartRecord record;
      record.cut = cut;
      record.cpu_seconds = timer.elapsed();
      record.feasible = check_solution(problem, parts).empty();
      result.total_cpu_seconds += record.cpu_seconds;
      if (record.feasible && cut < best) {
        best = cut;
        result.best_parts = parts;
      }
      result.starts.push_back(record);
    }
    result.best_cut = (best == kNoCut) ? 0 : best;
    result.wall_seconds = wall.elapsed();
    result.threads_used = 1;
    // The caller's engine may carry counters from earlier harness calls;
    // report only the work this call added.
    result.update_work =
        UpdateWork::delta(partitioner.update_work(), work_before);
    return result;
  }

  result.starts.resize(num_starts);
  std::vector<LocalBest> bests(workers);
  std::vector<std::vector<PartId>> parts_buf(workers);

  ThreadPool pool(workers);
  pool.parallel_for_dynamic(num_starts, [&](std::size_t w, std::size_t i) {
    Rng rng = base.fork(i);
    ThreadCpuTimer timer;
    const Weight cut = engines[w]->run_start(problem, rng, parts_buf[w], i);
    StartRecord record;
    record.cut = cut;
    record.cpu_seconds = timer.elapsed();
    record.feasible = check_solution(problem, parts_buf[w]).empty();
    result.starts[i] = record;  // distinct index per call: race-free
    if (record.feasible) bests[w].offer(cut, i, parts_buf[w]);
  });

  for (const StartRecord& r : result.starts) {
    result.total_cpu_seconds += r.cpu_seconds;
  }
  // Worker engines are fresh clones, so their counters are exactly this
  // call's work; integer sums over a fixed start set are independent of
  // which worker ran which start.
  for (const auto& engine : engines) {
    result.update_work.absorb(engine->update_work());
  }
  LocalBest merged = merge_bests(bests);
  result.best_cut = (merged.index == kNoIndex) ? 0 : merged.cut;
  result.best_parts = std::move(merged.parts);
  result.wall_seconds = wall.elapsed();
  result.threads_used = workers;
  return result;
}

PrunedMultistartResult run_multistart_pruned(const PartitionProblem& problem,
                                             const FmConfig& config,
                                             std::size_t num_starts,
                                             std::uint64_t seed,
                                             const PruneConfig& prune,
                                             std::size_t num_threads) {
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(num_threads, num_starts));

  PrunedMultistartResult out;
  MultistartResult& result = out.result;
  WallTimer wall;
  Rng base(seed);

  FmConfig pass1_config = config;
  pass1_config.max_passes = 1;

  if (workers <= 1) {
    result.starts.reserve(num_starts);
    Weight best = kNoCut;
    Weight best_pass1 = kNoCut;
    for (std::size_t i = 0; i < num_starts; ++i) {
      Rng rng = base.fork(i);
      ThreadCpuTimer timer;

      auto parts = random_initial(problem, rng);
      PartitionState state(*problem.graph);
      state.assign(parts);
      FmRefiner pass1(problem, pass1_config);
      pass1.refine(state, rng);
      const Weight pass1_cut = state.cut();

      StartRecord record;
      const bool doomed =
          best_pass1 != kNoCut &&
          static_cast<double>(pass1_cut) >
              prune.factor * static_cast<double>(best_pass1);
      best_pass1 = std::min(best_pass1, pass1_cut);

      if (doomed) {
        record.cut = pass1_cut;
        record.cpu_seconds = timer.elapsed();
        record.feasible = false;  // discarded; never competes for best
        ++out.pruned_starts;
        out.pruned_cpu_seconds += record.cpu_seconds;
      } else {
        FmRefiner rest(problem, config);
        rest.refine(state, rng);
        record.cut = state.cut();
        record.cpu_seconds = timer.elapsed();
        record.feasible = check_solution(problem, state.parts()).empty();
        if (record.feasible && record.cut < best) {
          best = record.cut;
          result.best_parts = state.parts();
        }
      }
      result.total_cpu_seconds += record.cpu_seconds;
      result.starts.push_back(record);
    }
    result.best_cut = (best == kNoCut) ? 0 : best;
    result.wall_seconds = wall.elapsed();
    result.threads_used = 1;
    return out;
  }

  // Parallel path.  Determinism hinges on the pruning threshold: start i
  // must be judged against the best first-pass cut of starts 0..i-1, not
  // against whatever happened to finish first.  Every start therefore
  // publishes its first-pass cut, a prefix pointer advances over the
  // published values in index order, and a worker briefly waits until the
  // prefix covers its own index before deciding.  Lower indices are
  // always handed out first, so the wait is bounded by in-flight first
  // passes, never by a full refinement.
  result.starts.resize(num_starts);
  std::vector<std::uint8_t> pruned_flag(num_starts, 0);
  std::vector<Weight> pass1_cuts(num_starts, 0);
  std::vector<std::uint8_t> published(num_starts, 0);
  std::vector<Weight> prefix_best(num_starts, 0);
  std::size_t frontier = 0;  // starts [0, frontier) are published
  std::mutex mutex;
  std::condition_variable prefix_advanced;

  std::vector<LocalBest> bests(workers);
  struct WorkerScratch {
    std::unique_ptr<PartitionState> state;
    std::unique_ptr<FmRefiner> pass1;
    std::unique_ptr<FmRefiner> rest;
  };
  std::vector<WorkerScratch> scratch(workers);
  for (auto& s : scratch) {
    s.state = std::make_unique<PartitionState>(*problem.graph);
    s.pass1 = std::make_unique<FmRefiner>(problem, pass1_config);
    s.rest = std::make_unique<FmRefiner>(problem, config);
  }

  // Every issued start MUST publish a first-pass cut (even on exception,
  // with a harmless sentinel) or waiters on the prefix would deadlock.
  auto publish = [&](std::size_t i, Weight pass1_cut) {
    std::lock_guard<std::mutex> lock(mutex);
    pass1_cuts[i] = pass1_cut;
    published[i] = 1;
    while (frontier < num_starts && published[frontier]) {
      prefix_best[frontier] =
          frontier == 0
              ? pass1_cuts[0]
              : std::min(prefix_best[frontier - 1], pass1_cuts[frontier]);
      ++frontier;
    }
    prefix_advanced.notify_all();
  };

  ThreadPool pool(workers);
  pool.parallel_for_dynamic(num_starts, [&](std::size_t w, std::size_t i) {
    Rng rng = base.fork(i);
    ThreadCpuTimer timer;

    PartitionState& state = *scratch[w].state;
    Weight pass1_cut = 0;
    try {
      auto parts = random_initial(problem, rng);
      state.assign(parts);
      scratch[w].pass1->refine(state, rng);
      pass1_cut = state.cut();
    } catch (...) {
      publish(i, kNoCut);
      throw;
    }
    publish(i, pass1_cut);

    bool doomed = false;
    {
      std::unique_lock<std::mutex> lock(mutex);
      prefix_advanced.wait(lock, [&] { return frontier > i; });
      doomed = i > 0 && static_cast<double>(pass1_cut) >
                            prune.factor *
                                static_cast<double>(prefix_best[i - 1]);
    }

    StartRecord record;
    if (doomed) {
      record.cut = pass1_cut;
      record.cpu_seconds = timer.elapsed();
      record.feasible = false;
      pruned_flag[i] = 1;
    } else {
      scratch[w].rest->refine(state, rng);
      record.cut = state.cut();
      record.cpu_seconds = timer.elapsed();
      record.feasible = check_solution(problem, state.parts()).empty();
      if (record.feasible) bests[w].offer(record.cut, i, state.parts());
    }
    result.starts[i] = record;
  });

  for (std::size_t i = 0; i < num_starts; ++i) {
    result.total_cpu_seconds += result.starts[i].cpu_seconds;
    if (pruned_flag[i]) {
      ++out.pruned_starts;
      out.pruned_cpu_seconds += result.starts[i].cpu_seconds;
    }
  }
  LocalBest merged = merge_bests(bests);
  result.best_cut = (merged.index == kNoIndex) ? 0 : merged.cut;
  result.best_parts = std::move(merged.parts);
  result.wall_seconds = wall.elapsed();
  result.threads_used = workers;
  return out;
}

MultistartResult run_multistart_budgeted(const PartitionProblem& problem,
                                         Bipartitioner& partitioner,
                                         double cpu_budget_seconds,
                                         std::uint64_t seed,
                                         std::size_t max_starts,
                                         std::size_t num_threads) {
  std::size_t workers = std::max<std::size_t>(1, num_threads);
  if (max_starts > 0) workers = std::min(workers, max_starts);
  std::vector<std::unique_ptr<Bipartitioner>> engines;
  if (workers > 1) engines = make_worker_engines(partitioner, workers);

  MultistartResult result;
  WallTimer wall;
  Rng base(seed);

  if (engines.empty()) {
    std::vector<PartId> parts;
    Weight best = kNoCut;
    std::size_t i = 0;
    while (true) {
      Rng rng = base.fork(i);
      ThreadCpuTimer timer;
      const Weight cut = partitioner.run(problem, rng, parts);
      StartRecord record;
      record.cut = cut;
      record.cpu_seconds = timer.elapsed();
      record.feasible = check_solution(problem, parts).empty();
      result.total_cpu_seconds += record.cpu_seconds;
      if (record.feasible && cut < best) {
        best = cut;
        result.best_parts = parts;
      }
      result.starts.push_back(record);
      ++i;
      if (result.total_cpu_seconds >= cpu_budget_seconds) break;
      if (max_starts > 0 && i >= max_starts) break;
    }
    result.best_cut = (best == kNoCut) ? 0 : best;
    result.wall_seconds = wall.elapsed();
    result.threads_used = 1;
    return result;
  }

  // Parallel path.  Starts run speculatively; admission replays the
  // serial rule in index order: the admitted set is the minimal prefix
  // whose accumulated per-start CPU reaches the budget (or the max_starts
  // cap).  Indices past the determined cutoff are discarded — their CPU
  // is charged neither to the records nor to total_cpu_seconds, exactly
  // as if they had never been launched.
  struct Shared {
    std::vector<StartRecord> records;
    std::vector<std::uint8_t> done;
    std::size_t frontier = 0;  // records [0, frontier) are final
    double cum_cpu = 0.0;
    bool cutoff_set = false;
    std::size_t cutoff = 0;  // last admitted index once cutoff_set
    bool aborted = false;
    std::exception_ptr error;
    std::mutex mutex;
  };
  Shared shared;

  ThreadPool pool(workers);
  std::vector<std::vector<PartId>> parts_buf(workers);
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&, w] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (max_starts > 0 && i >= max_starts) return;
        {
          std::lock_guard<std::mutex> lock(shared.mutex);
          if (shared.aborted || (shared.cutoff_set && i > shared.cutoff)) {
            return;
          }
        }
        StartRecord record;
        try {
          Rng rng = base.fork(i);
          ThreadCpuTimer timer;
          const Weight cut =
              engines[w]->run_start(problem, rng, parts_buf[w], i);
          record.cut = cut;
          record.cpu_seconds = timer.elapsed();
          record.feasible = check_solution(problem, parts_buf[w]).empty();
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared.mutex);
          if (!shared.error) shared.error = std::current_exception();
          shared.aborted = true;
          return;
        }
        {
          std::lock_guard<std::mutex> lock(shared.mutex);
          if (shared.records.size() <= i) {
            shared.records.resize(i + 1);
            shared.done.resize(i + 1, 0);
          }
          shared.records[i] = record;
          shared.done[i] = 1;
          while (shared.frontier < shared.done.size() &&
                 shared.done[shared.frontier]) {
            if (!shared.cutoff_set) {
              shared.cum_cpu += shared.records[shared.frontier].cpu_seconds;
              if (shared.cum_cpu >= cpu_budget_seconds) {
                shared.cutoff_set = true;
                shared.cutoff = shared.frontier;
              }
            }
            ++shared.frontier;
          }
        }
      }
    });
  }
  pool.wait_idle();
  if (shared.error) std::rethrow_exception(shared.error);

  // Workers only exit on the max_starts cap or a determined cutoff, so
  // the admitted prefix is well-defined here.
  const std::size_t last =
      shared.cutoff_set ? shared.cutoff : max_starts - 1;
  result.starts.assign(shared.records.begin(),
                       shared.records.begin() +
                           static_cast<std::ptrdiff_t>(last + 1));
  Weight best = kNoCut;
  std::size_t best_index = kNoIndex;
  for (std::size_t i = 0; i <= last; ++i) {
    result.total_cpu_seconds += result.starts[i].cpu_seconds;
    if (result.starts[i].feasible && result.starts[i].cut < best) {
      best = result.starts[i].cut;
      best_index = i;
    }
  }
  result.best_cut = (best == kNoCut) ? 0 : best;
  if (best_index != kNoIndex) {
    // Regenerate the winning assignment (starts are pure functions of
    // their fork, so this is exact) instead of retaining every start's
    // parts vector during the run.
    Rng rng = base.fork(best_index);
    engines[0]->run_start(problem, rng, result.best_parts, best_index);
  }
  result.wall_seconds = wall.elapsed();
  result.threads_used = workers;
  return result;
}

}  // namespace vlsipart
