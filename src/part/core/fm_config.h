// FM engine configuration: every "implicit implementation decision" the
// paper identifies (Sec. 2.2) is an explicit, switchable policy here, so
// the testbed can reproduce the full cross-product the paper measures.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/audit_config.h"

namespace vlsipart {

/// Tie-breaking among equal-key highest-gain buckets when moves are
/// segregated by source partition (paper, Sec. 2.2, first bullet).
enum class TieBreak : std::uint8_t {
  kAway = 0,   ///< move NOT from the partition of the last moved vertex
  kPart0 = 1,  ///< always prefer the move out of partition 0
  kToward = 2, ///< move FROM the partition of the last moved vertex
};

/// What to do when a neighbor's delta gain is zero during gain update
/// (paper, Sec. 2.2, second bullet).
enum class ZeroGainUpdate : std::uint8_t {
  kAll = 0,      ///< reinsert the vertex anyway ("All-dgain"); shifts its
                 ///< position within the same gain bucket
  kNonzero = 1,  ///< skip the update; position unchanged ("Nonzero")
};

/// Where a (re)inserted vertex lands within its gain bucket (paper,
/// Sec. 2.2, third bullet; studied by Hagen-Huang-Kahng [21]).
enum class InsertOrder : std::uint8_t {
  kLifo = 0,    ///< push at the head (the choice [21] found best)
  kFifo = 1,    ///< push at the tail
  kRandom = 2,  ///< random end (O(1) randomized position approximation)
};

/// Tie-breaking when selecting the best solution seen during a pass
/// (paper, Sec. 2.2, fourth bullet).
enum class BestChoice : std::uint8_t {
  kFirst = 0,    ///< earliest prefix achieving the best cut
  kLast = 1,     ///< latest prefix achieving the best cut
  kBalance = 2,  ///< among best-cut prefixes, the one with most slack to
                 ///< the balance bounds
};

/// What to skip when the head of the highest-gain bucket is illegal
/// (paper, Sec. 2.3: "the entire bucket (or perhaps even every bucket for
/// that partition) is skipped").
enum class IllegalHeadPolicy : std::uint8_t {
  kSkipBucket = 0,  ///< descend to the next lower bucket of that side
  kSkipSide = 1,    ///< abandon the whole side for this selection
};

struct FmConfig {
  /// false = classic FM keyed by actual gain [17]; true = CLIP [15],
  /// keyed by cumulative delta gain since the start of the pass.
  bool clip = false;

  TieBreak tie_break = TieBreak::kAway;
  ZeroGainUpdate zero_gain_update = ZeroGainUpdate::kNonzero;
  InsertOrder insert_order = InsertOrder::kLifo;
  BestChoice best_choice = BestChoice::kFirst;
  IllegalHeadPolicy illegal_head = IllegalHeadPolicy::kSkipBucket;

  /// The corking fix of Sec. 2.3: do not insert cells whose area exceeds
  /// the balance window into the gain structure (they can never legally
  /// move between two feasible solutions).  "Essentially zero overhead."
  bool exclude_oversized = false;

  /// Look past an illegal first move within a bucket (the alternative
  /// fix Sec. 2.3 finds "too time-consuming" and harmful to quality).
  bool look_beyond_first = false;

  /// Krishnamurthy lookahead depth [30]: 1 = classic FM gains; r > 1
  /// breaks ties among equal-gain moves by comparing level-2..r lookahead
  /// gains (binding-number based) lexicographically.  Ignored in CLIP
  /// mode (cumulative-delta keys have no level structure).
  int lookahead_depth = 1;
  /// At most this many entries of a bucket are scanned when lookahead
  /// tie-breaking is active (bounds the per-selection cost).
  std::size_t lookahead_scan_limit = 16;

  /// Stop after this many passes even if still improving; <= 0 means run
  /// until a pass yields no improvement.
  int max_passes = -1;

  /// Early pass termination: abandon a pass after this many consecutive
  /// moves without improving the best-seen cut (0 = classic full pass).
  /// Used by multilevel refinement for speed.
  std::size_t max_moves_past_best = 0;

  /// Record the per-move cut trajectory of every pass into
  /// FmResult::pass_traces (diagnostic; costs one Weight per move).
  bool record_trace = false;

  /// Worker threads for refinement.  1 = the serial FM engine above
  /// (bit-identical to historical behavior); > 1 selects the
  /// synchronous-round parallel refiner (parallel_refine.h), whose
  /// results are identical for every thread count — the two engines are
  /// different heuristics, so 1 vs >1 legitimately differ.
  std::size_t refine_threads = 1;

  /// Runtime invariant audits (off by default).  The engine resolves this
  /// against the VLSIPART_AUDIT environment variable at construction —
  /// the env var, when set, wins — so audits can be forced on for any
  /// binary without code changes.  See invariant_audit.h.
  AuditConfig audit;

  std::string to_string() const;
};

const char* name_of(TieBreak v);
const char* name_of(ZeroGainUpdate v);
const char* name_of(InsertOrder v);
const char* name_of(BestChoice v);
const char* name_of(IllegalHeadPolicy v);

}  // namespace vlsipart
