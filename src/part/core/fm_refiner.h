// Fiduccia-Mattheyses pass-based 2-way refinement engine, with the CLIP
// variant of Dutt-Deng [15], parameterized over every implicit
// implementation decision the paper studies (see FmConfig).
//
// The engine refines a PartitionState in place.  Each pass:
//   1. computes gains and builds the gain container (CLIP: all keys 0,
//      heads ordered by descending initial gain, per [15]);
//   2. repeatedly selects the highest-key legal move — examining only the
//      first move of each bucket unless look_beyond_first — applies it,
//      locks the vertex, and updates neighbor gains via the
//      "four cut values" per-net delta computation, honoring the
//      zero-delta-gain update policy;
//   3. rolls back to the best prefix (tie-broken per BestChoice).
// Passes repeat until no improvement (or max_passes).
//
// Pass statistics expose the corking diagnostics of Sec. 2.3:
// a zero-move pass is exactly a "corked" CLIP pass.
#pragma once

#include <vector>

#include "src/part/core/fm_config.h"
#include "src/part/core/gain_container.h"
#include "src/part/core/partition_state.h"
#include "src/util/rng.h"

namespace vlsipart {

struct FmPassStats {
  std::size_t moves_made = 0;
  std::size_t moves_kept = 0;  ///< best prefix length after rollback
  Weight cut_before = 0;
  Weight cut_after = 0;
  /// Pass ended with vertices still in the gain container (every
  /// remaining head was illegal) rather than by exhaustion.
  bool stalled = false;
  /// Pass made no moves at all — the corking signature.
  bool zero_move_pass = false;
  std::size_t zero_delta_updates = 0;
  std::size_t nonzero_delta_updates = 0;
  /// Vertices excluded from the gain structure as oversized.
  std::size_t oversized_excluded = 0;
};

struct FmResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  std::size_t passes = 0;
  std::size_t total_moves = 0;
  std::size_t zero_move_passes = 0;
  std::size_t stalled_passes = 0;
  std::vector<FmPassStats> pass_stats;
  /// Per-pass cut-after-each-move trajectories; only recorded when
  /// FmConfig::record_trace is set.  trace[p][m] is the cut after move
  /// m+1 of pass p (before rollback) — the classic FM pass profile, and
  /// the raw data behind "traces of CLIP executions show that corking
  /// actually occurs fairly often" (Sec. 2.3).
  std::vector<std::vector<Weight>> pass_traces;
};

class FmRefiner {
 public:
  /// The problem (graph/balance/fixed) must outlive the refiner.
  FmRefiner(const PartitionProblem& problem, FmConfig config);

  /// Refine `state` (already fully assigned) in place.  Deterministic
  /// given `rng`'s state.  The state's assignment always ends feasible if
  /// it started feasible (rollback guarantees never-worse cut and
  /// never-worse balance violation).
  FmResult refine(PartitionState& state, Rng& rng);

  const FmConfig& config() const { return config_; }

 private:
  struct Candidate {
    VertexId v = kInvalidVertex;
    Gain key = 0;
    bool valid = false;
  };

  bool move_allowed(const PartitionState& state, VertexId v) const;
  Candidate select_from_side(const PartitionState& state, PartId side) const;
  Candidate select_move(const PartitionState& state, PartId last_from) const;
  FmPassStats run_pass(PartitionState& state, Rng& rng);

  /// Krishnamurthy level-2..r lookahead gains of v (binding numbers over
  /// free/locked pin counts); out[k-2] is the level-k gain.
  void lookahead_vector(const PartitionState& state, VertexId v,
                        std::vector<Gain>& out) const;
  /// Within the bucket starting at `head`, pick the legal move with the
  /// lexicographically largest lookahead vector (scanning at most
  /// lookahead_scan_limit entries).  kInvalidVertex if none is legal.
  VertexId lookahead_pick(const PartitionState& state, VertexId head) const;

  /// Imbalance of a part-0 weight: 0 when feasible, else distance to the
  /// window.  Used so passes started from an infeasible projection (in
  /// multilevel uncoarsening) first restore feasibility.
  Weight imbalance(Weight w0) const;

  const PartitionProblem* problem_;
  FmConfig config_;
  GainContainer container_;
  std::vector<std::uint8_t> locked_;
  std::vector<VertexId> move_order_;
  Gain max_abs_gain_ = 0;
  /// Per-net locked pin counts by side; maintained only when lookahead
  /// tie-breaking is active (binding numbers need free-vs-locked).
  std::array<std::vector<std::uint32_t>, 2> locked_in_;
  bool use_lookahead_ = false;
  /// Cut-after-each-move trajectory of the pass in flight (only when
  /// config_.record_trace).
  std::vector<Weight> current_trace_;
  /// Per-pass scratch, hoisted so repeated refine() calls (multistart)
  /// reuse the allocations instead of reconstructing them every pass.
  std::vector<VertexId> build_order_;
  std::vector<Gain> initial_gain_;
  std::vector<std::uint32_t> old_pins0_;
  std::vector<std::uint32_t> old_pins1_;
};

}  // namespace vlsipart
