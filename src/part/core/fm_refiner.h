// Fiduccia-Mattheyses pass-based 2-way refinement engine, with the CLIP
// variant of Dutt-Deng [15], parameterized over every implicit
// implementation decision the paper studies (see FmConfig).
//
// The engine refines a PartitionState in place.  Each pass:
//   1. computes gains and builds the gain container (CLIP: all keys 0,
//      heads ordered by descending initial gain, per [15]);
//   2. repeatedly selects the highest-key legal move — examining only the
//      first move of each bucket unless look_beyond_first — applies it,
//      locks the vertex, and updates neighbor gains via the
//      "four cut values" per-net delta computation, honoring the
//      zero-delta-gain update policy;
//   3. rolls back to the best prefix (tie-broken per BestChoice).
// Passes repeat until no improvement (or max_passes).
//
// Pass statistics expose the corking diagnostics of Sec. 2.3:
// a zero-move pass is exactly a "corked" CLIP pass.
#pragma once

#include <vector>

#include "src/part/core/fm_config.h"
#include "src/part/core/gain_container.h"
#include "src/part/core/partition_state.h"
#include "src/util/rng.h"

namespace vlsipart {

struct FmPassStats {
  std::size_t moves_made = 0;
  std::size_t moves_kept = 0;  ///< best prefix length after rollback
  Weight cut_before = 0;
  Weight cut_after = 0;
  /// Pass ended with vertices still in the gain container (every
  /// remaining head was illegal) rather than by exhaustion.
  bool stalled = false;
  /// Pass made no moves at all — the corking signature.
  bool zero_move_pass = false;
  std::size_t zero_delta_updates = 0;
  std::size_t nonzero_delta_updates = 0;
  /// Vertices excluded from the gain structure as oversized.
  std::size_t oversized_excluded = 0;
  /// Incident nets whose per-pin delta-gain walk was skipped because the
  /// net stayed non-critical across the move (>= 2 pins on both sides
  /// before and after — every pin's delta is provably zero).  Only
  /// possible when zero_gain_update != kAll; the skip is observationally
  /// identical to walking the net and doing nothing.
  std::size_t nets_skipped_noncritical = 0;
  /// Incident nets whose pins were actually walked during gain update.
  std::size_t nets_walked = 0;
};

/// Cumulative gain-update work counters — the cost model behind the
/// net-state-aware inner loop.  Aggregated across passes (and, in the
/// multistart harness, across starts) so benches can report how much
/// update work a configuration actually performed.
struct UpdateWork {
  std::size_t nets_skipped_noncritical = 0;
  std::size_t nets_walked = 0;
  std::size_t nonzero_delta_updates = 0;
  std::size_t zero_delta_updates = 0;

  void absorb(const FmPassStats& s) {
    nets_skipped_noncritical += s.nets_skipped_noncritical;
    nets_walked += s.nets_walked;
    nonzero_delta_updates += s.nonzero_delta_updates;
    zero_delta_updates += s.zero_delta_updates;
  }
  void absorb(const UpdateWork& o) {
    nets_skipped_noncritical += o.nets_skipped_noncritical;
    nets_walked += o.nets_walked;
    nonzero_delta_updates += o.nonzero_delta_updates;
    zero_delta_updates += o.zero_delta_updates;
  }
  /// Counters accumulated in `after` since the `before` snapshot.
  static UpdateWork delta(const UpdateWork& after, const UpdateWork& before) {
    UpdateWork d;
    d.nets_skipped_noncritical =
        after.nets_skipped_noncritical - before.nets_skipped_noncritical;
    d.nets_walked = after.nets_walked - before.nets_walked;
    d.nonzero_delta_updates =
        after.nonzero_delta_updates - before.nonzero_delta_updates;
    d.zero_delta_updates =
        after.zero_delta_updates - before.zero_delta_updates;
    return d;
  }
  /// Fraction of incident-net visits resolved without a pin walk.
  double skip_rate() const {
    const std::size_t total = nets_skipped_noncritical + nets_walked;
    return total == 0
               ? 0.0
               : static_cast<double>(nets_skipped_noncritical) /
                     static_cast<double>(total);
  }
};

struct FmResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  std::size_t passes = 0;
  std::size_t total_moves = 0;
  std::size_t zero_move_passes = 0;
  std::size_t stalled_passes = 0;
  std::vector<FmPassStats> pass_stats;
  /// Per-pass cut-after-each-move trajectories; only recorded when
  /// FmConfig::record_trace is set.  trace[p][m] is the cut after move
  /// m+1 of pass p (before rollback) — the classic FM pass profile, and
  /// the raw data behind "traces of CLIP executions show that corking
  /// actually occurs fairly often" (Sec. 2.3).
  std::vector<std::vector<Weight>> pass_traces;

  /// Gain-update work summed over all passes of this refine() call.
  UpdateWork update_work() const {
    UpdateWork w;
    for (const FmPassStats& s : pass_stats) w.absorb(s);
    return w;
  }
};

class FmRefiner {
 public:
  /// The problem (graph/balance/fixed) must outlive the refiner.
  FmRefiner(const PartitionProblem& problem, FmConfig config);

  /// Refine `state` (already fully assigned) in place.  Deterministic
  /// given `rng`'s state.  The state's assignment always ends feasible if
  /// it started feasible (rollback guarantees never-worse cut and
  /// never-worse balance violation).
  FmResult refine(PartitionState& state, Rng& rng);

  const FmConfig& config() const { return config_; }

 private:
  struct Candidate {
    VertexId v = kInvalidVertex;
    Gain key = 0;
    bool valid = false;
  };

  bool move_allowed(const PartitionState& state, VertexId v) const;
  Candidate select_from_side(const PartitionState& state, PartId side) const;
  Candidate select_move(const PartitionState& state, PartId last_from) const;
  FmPassStats run_pass(PartitionState& state, Rng& rng);

  /// From-scratch cross-check of every incrementally maintained structure
  /// (see invariant_audit.h); called at the cadence audit_ prescribes.
  void run_in_pass_audit(const PartitionState& state) const;

  /// Krishnamurthy level-2..r lookahead gains of v (binding numbers over
  /// free/locked pin counts); out[k-2] is the level-k gain.
  void lookahead_vector(const PartitionState& state, VertexId v,
                        std::vector<Gain>& out) const;
  /// Within the bucket starting at `head`, pick the legal move with the
  /// lexicographically largest lookahead vector (scanning at most
  /// lookahead_scan_limit entries).  kInvalidVertex if none is legal.
  VertexId lookahead_pick(const PartitionState& state, VertexId head) const;

  /// Imbalance of a part-0 weight: 0 when feasible, else distance to the
  /// window.  Used so passes started from an infeasible projection (in
  /// multilevel uncoarsening) first restore feasibility.
  Weight imbalance(Weight w0) const;

  const PartitionProblem* problem_;
  FmConfig config_;
  /// config_.audit resolved against VLSIPART_AUDIT at construction.
  AuditConfig audit_;
  GainContainer container_;
  std::vector<std::uint8_t> locked_;
  std::vector<VertexId> move_order_;
  Gain max_abs_gain_ = 0;
  /// Per-net locked pin counts by side; maintained only when lookahead
  /// tie-breaking is active (binding numbers need free-vs-locked).
  std::array<std::vector<std::uint32_t>, 2> locked_in_;
  bool use_lookahead_ = false;
  /// Cut-after-each-move trajectory of the pass in flight (only when
  /// config_.record_trace).
  std::vector<Weight> current_trace_;
  /// Per-pass scratch, hoisted so repeated refine() calls (multistart)
  /// reuse the allocations instead of reconstructing them every pass.
  std::vector<VertexId> build_order_;
  std::vector<Gain> initial_gain_;
  /// Pre-move pin counts of the moved vertex's nets, filled by
  /// PartitionState::move() in the same walk that applies the move.
  MoveNetCounts move_counts_;
  /// Lookahead-selection scratch (lookahead_pick is called per selection;
  /// the vectors are members so the per-call allocation disappears).
  mutable std::vector<Gain> la_vec_;
  mutable std::vector<Gain> la_best_vec_;
};

}  // namespace vlsipart
