// From-scratch invariant audits of the FM engine's incremental state.
//
// Every quantity the inner loop maintains incrementally — gain-container
// keys, per-net pin counts, the cut, part weights, lookahead locked-pin
// counts — is recomputed here from first principles and compared against
// the live structures, failing fast through VP_CHECK on any drift.  The
// audits are pure observers: they never touch the RNG or mutate state,
// so running them cannot change a result, only expose a wrong one.
//
// Cadence is controlled by AuditConfig (FmConfig::audit, overridable via
// the VLSIPART_AUDIT environment variable); see DESIGN.md "Correctness
// tooling".
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/part/core/fm_config.h"
#include "src/part/core/gain_container.h"
#include "src/part/core/partition_state.h"

namespace vlsipart {

/// Read-only snapshot of everything an in-pass audit needs.  All members
/// reference structures owned by the refiner; the view must not outlive
/// the pass it audits.
struct FmAuditView {
  const PartitionProblem* problem = nullptr;
  const FmConfig* config = nullptr;
  const PartitionState* state = nullptr;
  const GainContainer* container = nullptr;
  /// Pass-start gains (the CLIP key baseline).
  std::span<const Gain> initial_gain;
  /// 1 = vertex moved (locked) this pass.
  std::span<const std::uint8_t> locked;
  /// Per-net locked pin counts by side; nullptr unless lookahead
  /// tie-breaking maintains them.
  const std::array<std::vector<std::uint32_t>, 2>* locked_in = nullptr;
};

/// Recompute every contained vertex's expected key — actual gain for
/// classic FM, cumulative delta gain (gain now minus pass-start gain)
/// for CLIP — and compare with GainContainer::key(); also checks side
/// bookkeeping, per-side counts, and that locked / fixed / excluded
/// vertices are absent.  O(pins).
void audit_gain_container(const FmAuditView& view);

/// Recompute the lookahead locked-pin counts (fixed, oversized-excluded
/// and moved vertices per side) and compare with the maintained arrays.
/// No-op when view.locked_in is nullptr.  O(pins).
void audit_locked_pins(const FmAuditView& view);

/// Full mid-pass audit: state.audit() plus the two checks above.
void audit_mid_pass(const FmAuditView& view);

/// Pass-boundary audit: state.audit() (pin counts, cut and part weights
/// re-derived from the assignment) plus the rollback guarantees — the
/// pass never worsened the balance violation, and at equal violation
/// never worsened the cut.
void audit_pass_boundary(const PartitionProblem& problem,
                         const PartitionState& state, Weight imbalance_before,
                         Weight cut_before);

}  // namespace vlsipart
