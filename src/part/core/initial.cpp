#include "src/part/core/initial.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"

namespace vlsipart {
namespace {

std::vector<PartId> build_initial(const PartitionProblem& problem, Rng* rng) {
  const Hypergraph& h = *problem.graph;
  const std::size_t n = h.num_vertices();
  std::vector<PartId> parts(n, kNoPart);
  Weight weight[2] = {0, 0};

  // Fixed vertices first.
  for (std::size_t v = 0; v < n; ++v) {
    if (problem.is_fixed(static_cast<VertexId>(v))) {
      const PartId p = problem.fixed[v];
      parts[v] = p;
      weight[p] += h.vertex_weight(static_cast<VertexId>(v));
    }
  }

  std::vector<VertexId> order;
  order.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (parts[v] == kNoPart) order.push_back(static_cast<VertexId>(v));
  }
  if (rng != nullptr) rng->shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return h.vertex_weight(a) > h.vertex_weight(b);
  });

  const Weight max_part = problem.balance.max_part();
  for (const VertexId v : order) {
    const Weight w = h.vertex_weight(v);
    const bool fits0 = weight[0] + w <= max_part;
    const bool fits1 = weight[1] + w <= max_part;
    PartId p;
    if (fits0 && fits1) {
      p = (rng != nullptr) ? static_cast<PartId>(rng->below(2))
                           : static_cast<PartId>(weight[0] <= weight[1] ? 0
                                                                        : 1);
    } else if (fits0 != fits1) {
      p = fits0 ? 0 : 1;
    } else {
      p = weight[0] <= weight[1] ? 0 : 1;
    }
    parts[v] = p;
    weight[p] += w;
  }
  return parts;
}

}  // namespace

std::vector<PartId> random_initial(const PartitionProblem& problem,
                                   Rng& rng) {
  return build_initial(problem, &rng);
}

std::vector<PartId> lpt_initial(const PartitionProblem& problem) {
  return build_initial(problem, nullptr);
}

std::vector<PartId> bfs_initial(const PartitionProblem& problem, Rng& rng) {
  const Hypergraph& h = *problem.graph;
  const std::size_t n = h.num_vertices();
  // 32-bit id contract: every vertex index below is representable.
  VP_CHECK(n <= kInvalidVertex, "vertex count " << n << " fits VertexId");
  std::vector<PartId> parts(n, 1);
  Weight w0 = 0;
  const Weight target = h.total_vertex_weight() / 2;

  std::vector<VertexId> frontier;
  auto claim = [&](VertexId v) {
    if (parts[v] == 0) return;
    // Fixed part-1 vertices can never join the region.
    if (problem.is_fixed(v) && problem.fixed[v] == 1) return;
    parts[v] = 0;
    w0 += h.vertex_weight(v);
    frontier.push_back(v);
  };

  // Fixed part-0 vertices pre-seed the region.
  for (std::size_t v = 0; v < n; ++v) {
    if (problem.is_fixed(static_cast<VertexId>(v)) &&
        problem.fixed[v] == 0) {
      claim(static_cast<VertexId>(v));
    }
  }

  std::size_t cursor = 0;
  while (w0 < target) {
    if (cursor == frontier.size()) {
      // Grown region exhausted (or empty): jump to a fresh random free
      // seed — handles disconnected instances.
      VertexId seed = kInvalidVertex;
      for (std::size_t attempt = 0; attempt < 4 * n; ++attempt) {
        const auto v = static_cast<VertexId>(rng.below(n));
        if (parts[v] == 1 && !(problem.is_fixed(v) && problem.fixed[v] == 1)) {
          seed = v;
          break;
        }
      }
      if (seed == kInvalidVertex) break;  // everything claimable claimed
      claim(seed);
      continue;
    }
    const VertexId v = frontier[cursor++];
    for (const EdgeId e : h.incident_edges(v)) {
      for (const VertexId u : h.pins(e)) {
        if (w0 >= target) break;
        claim(u);
      }
      if (w0 >= target) break;
    }
  }
  return parts;
}

const char* name_of(InitialScheme scheme) {
  switch (scheme) {
    case InitialScheme::kRandom:
      return "Random";
    case InitialScheme::kBfs:
      return "BFS";
    case InitialScheme::kMixed:
      return "Mixed";
  }
  return "?";
}

std::vector<PartId> make_initial(const PartitionProblem& problem,
                                 InitialScheme scheme, std::size_t try_index,
                                 Rng& rng) {
  switch (scheme) {
    case InitialScheme::kRandom:
      return random_initial(problem, rng);
    case InitialScheme::kBfs:
      return bfs_initial(problem, rng);
    case InitialScheme::kMixed:
      return (try_index % 2 == 0) ? random_initial(problem, rng)
                                  : bfs_initial(problem, rng);
  }
  return random_initial(problem, rng);
}

}  // namespace vlsipart
