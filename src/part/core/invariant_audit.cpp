#include "src/part/core/invariant_audit.h"

#include "src/util/logging.h"

namespace vlsipart {
namespace {

Weight imbalance_of(const BalanceConstraint& balance, Weight w0) {
  if (w0 < balance.min_part()) return balance.min_part() - w0;
  if (w0 > balance.max_part()) return w0 - balance.max_part();
  return 0;
}

/// A vertex the pass never inserts: fixed, or oversized under the
/// corking fix.
bool is_immovable(const FmAuditView& view, VertexId v) {
  if (view.problem->is_fixed(v)) return true;
  return view.config->exclude_oversized &&
         view.problem->graph->vertex_weight(v) >
             view.problem->balance.window();
}

}  // namespace

void audit_gain_container(const FmAuditView& view) {
  const PartitionState& state = *view.state;
  const GainContainer& container = *view.container;
  const std::size_t n = view.problem->graph->num_vertices();
  VP_CHECK(view.initial_gain.size() == n,
           "audit: initial-gain span covers vertices");
  VP_CHECK(view.locked.size() == n, "audit: locked span covers vertices");
  std::size_t contained_by_side[2] = {0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<VertexId>(i);
    if (view.locked[i] != 0 || is_immovable(view, v)) {
      VP_CHECK(!container.contains(v),
               "audit: locked/fixed/excluded vertex " << i
                                                      << " in gain container");
      continue;
    }
    VP_CHECK(container.contains(v),
             "audit: free vertex " << i << " missing from gain container");
    ++contained_by_side[container.side_of(v)];
    VP_CHECK(container.side_of(v) == state.part(v),
             "audit: container side of vertex "
                 << i << " is " << int(container.side_of(v))
                 << " but the vertex is in part " << int(state.part(v)));
    // Classic FM keys are the actual gain; CLIP keys are the cumulative
    // delta gain accrued since the pass started.
    const Gain expected = view.config->clip
                              ? state.gain(v) - view.initial_gain[i]
                              : state.gain(v);
    VP_CHECK(container.key(v) == expected,
             "audit: gain key drift at vertex "
                 << i << ": container " << container.key(v)
                 << " vs recomputed " << expected
                 << (view.config->clip ? " (CLIP cumulative delta)" : ""));
  }
  VP_CHECK(contained_by_side[0] == container.size(0) &&
               contained_by_side[1] == container.size(1),
           "audit: container per-side counts ("
               << container.size(0) << ", " << container.size(1)
               << ") disagree with contained vertices ("
               << contained_by_side[0] << ", " << contained_by_side[1]
               << ")");
}

void audit_locked_pins(const FmAuditView& view) {
  if (view.locked_in == nullptr) return;
  const Hypergraph& h = *view.problem->graph;
  const PartitionState& state = *view.state;
  std::array<std::vector<std::uint32_t>, 2> expected;
  expected[0].assign(h.num_edges(), 0);
  expected[1].assign(h.num_edges(), 0);
  for (std::size_t i = 0; i < h.num_vertices(); ++i) {
    const auto v = static_cast<VertexId>(i);
    if (view.locked[i] == 0 && !is_immovable(view, v)) continue;
    for (const EdgeId e : h.incident_edges(v)) {
      ++expected[state.part(v)][e];
    }
  }
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    VP_CHECK((*view.locked_in)[0][e] == expected[0][e] &&
                 (*view.locked_in)[1][e] == expected[1][e],
             "audit: lookahead locked-pin counts drifted on edge "
                 << e << ": maintained (" << (*view.locked_in)[0][e] << ", "
                 << (*view.locked_in)[1][e] << ") vs recomputed ("
                 << expected[0][e] << ", " << expected[1][e] << ")");
  }
}

void audit_mid_pass(const FmAuditView& view) {
  view.state->audit();
  audit_gain_container(view);
  audit_locked_pins(view);
}

void audit_pass_boundary(const PartitionProblem& problem,
                         const PartitionState& state, Weight imbalance_before,
                         Weight cut_before) {
  state.audit();
  const Weight imbalance_after =
      imbalance_of(problem.balance, state.part_weight(0));
  VP_CHECK(imbalance_after <= imbalance_before,
           "audit: pass worsened the balance violation from "
               << imbalance_before << " to " << imbalance_after);
  if (imbalance_after == imbalance_before) {
    VP_CHECK(state.cut() <= cut_before,
             "audit: pass worsened the cut from " << cut_before << " to "
                                                  << state.cut()
                                                  << " at equal imbalance");
  }
}

}  // namespace vlsipart
