#include "src/part/core/fm_config.h"

#include <sstream>

namespace vlsipart {

const char* name_of(TieBreak v) {
  switch (v) {
    case TieBreak::kAway:
      return "Away";
    case TieBreak::kPart0:
      return "Part0";
    case TieBreak::kToward:
      return "Toward";
  }
  return "?";
}

const char* name_of(ZeroGainUpdate v) {
  switch (v) {
    case ZeroGainUpdate::kAll:
      return "AllDgain";
    case ZeroGainUpdate::kNonzero:
      return "Nonzero";
  }
  return "?";
}

const char* name_of(InsertOrder v) {
  switch (v) {
    case InsertOrder::kLifo:
      return "LIFO";
    case InsertOrder::kFifo:
      return "FIFO";
    case InsertOrder::kRandom:
      return "Random";
  }
  return "?";
}

const char* name_of(BestChoice v) {
  switch (v) {
    case BestChoice::kFirst:
      return "First";
    case BestChoice::kLast:
      return "Last";
    case BestChoice::kBalance:
      return "Balance";
  }
  return "?";
}

const char* name_of(IllegalHeadPolicy v) {
  switch (v) {
    case IllegalHeadPolicy::kSkipBucket:
      return "SkipBucket";
    case IllegalHeadPolicy::kSkipSide:
      return "SkipSide";
  }
  return "?";
}

std::string FmConfig::to_string() const {
  std::ostringstream out;
  out << (clip ? "CLIP" : "FM") << "(" << name_of(tie_break) << ","
      << name_of(zero_gain_update) << "," << name_of(insert_order) << ","
      << name_of(best_choice) << "," << name_of(illegal_head)
      << (exclude_oversized ? ",noOversized" : "")
      << (look_beyond_first ? ",lookBeyond" : "");
  if (lookahead_depth > 1) out << ",LA" << lookahead_depth;
  if (refine_threads > 1) out << ",par" << refine_threads;
  if (audit.enabled()) out << ",audit=" << audit.to_string();
  out << ")";
  return out.str();
}

}  // namespace vlsipart
