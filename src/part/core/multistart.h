// Independent-start harness.
//
// Runs a Bipartitioner N times from independent seeds and records, per
// start, the cut and CPU time — the raw material for the paper's
// min/average tables (Tables 1-3) and for the BSF/Pareto reporting of
// Sec. 3.2.  Start i always uses base_rng.fork(i), so any individual
// start is reproducible in isolation.
#pragma once

#include <cstddef>
#include <vector>

#include "src/part/core/partitioner.h"
#include "src/util/stats.h"

namespace vlsipart {

struct StartRecord {
  Weight cut = 0;
  double cpu_seconds = 0.0;
  bool feasible = false;
};

struct MultistartResult {
  std::vector<StartRecord> starts;
  std::vector<PartId> best_parts;
  Weight best_cut = 0;
  double total_cpu_seconds = 0.0;

  Weight min_cut() const;
  double avg_cut() const;
  double avg_cpu_seconds() const;
  /// Retained sample of cuts for order-statistic math (BSF curves).
  Sample cut_sample() const;
  Sample time_sample() const;
};

/// Run `num_starts` independent starts.  Each start's feasibility is
/// audited with check_solution(); infeasible results are recorded but
/// never become best_parts.
MultistartResult run_multistart(const PartitionProblem& problem,
                                Bipartitioner& partitioner,
                                std::size_t num_starts, std::uint64_t seed);

/// Start pruning (Sec. 3.2): "pruning (early termination of starts that
/// appear unpromising relative to previous starts) can be applied".
/// A start is abandoned after its first FM pass if that pass's cut
/// exceeds `factor` times the best first-pass cut seen so far.
struct PruneConfig {
  double factor = 1.10;
};

struct PrunedMultistartResult {
  MultistartResult result;
  std::size_t pruned_starts = 0;
  /// CPU spent on starts that were pruned (the saved work is the
  /// difference against an unpruned run).
  double pruned_cpu_seconds = 0.0;
};

/// Pruned multistart of the flat FM engine.  Pruned starts are recorded
/// in result.starts with the cut they had when abandoned (marked
/// infeasible so they never become best_parts), mirroring how a
/// practical implementation would discard them.
PrunedMultistartResult run_multistart_pruned(const PartitionProblem& problem,
                                             const FmConfig& config,
                                             std::size_t num_starts,
                                             std::uint64_t seed,
                                             const PruneConfig& prune);

/// Budgeted multistart — the paper's actual use model (Sec. 3.2): keep
/// launching independent starts while the consumed CPU stays below
/// `cpu_budget_seconds`; at least one start always runs.  This is the
/// regime behind the BSF curve's tau axis ("the solution cost that the
/// algorithm is expected to achieve in a multistart regime, versus the
/// given CPU time budget tau").  A cap of `max_starts` bounds the run on
/// very fast instances (0 = unbounded).
MultistartResult run_multistart_budgeted(const PartitionProblem& problem,
                                         Bipartitioner& partitioner,
                                         double cpu_budget_seconds,
                                         std::uint64_t seed,
                                         std::size_t max_starts = 0);

}  // namespace vlsipart
