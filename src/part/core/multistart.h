// Independent-start harness.
//
// Runs a Bipartitioner N times from independent seeds and records, per
// start, the cut and CPU time — the raw material for the paper's
// min/average tables (Tables 1-3) and for the BSF/Pareto reporting of
// Sec. 3.2.  Start i always uses base_rng.fork(i), so any individual
// start is reproducible in isolation.
//
// All three regimes accept a `num_threads` knob (default 1 = the
// historical serial path).  Starts are embarrassingly parallel — start i
// is a pure function of (problem, engine config, base_rng.fork(i)) — so
// the parallel paths return *bit-identical* results at any thread count:
//   * records land in starts[i] by start index, never by completion order;
//   * best-start selection is the feasible start with the lowest cut,
//     ties broken by the lowest start index (exactly the serial rule);
//   * the pruning threshold seen by start i is the best first-pass cut
//     over starts 0..i-1 (a prefix min, enforced by publication order),
//     not over "whatever happened to finish first";
//   * the budgeted regime admits starts by accumulated per-start CPU in
//     index order, so the admitted prefix does not depend on the thread
//     count (the prefix length still depends on measured CPU times, as it
//     always has in the serial path).
// Per-start cpu_seconds uses the *thread* CPU clock; wall_seconds is the
// harness wall-clock — the quantity parallelism improves.  See DESIGN.md
// ("Threading model").
#pragma once

#include <cstddef>
#include <vector>

#include "src/part/core/partitioner.h"
#include "src/util/stats.h"

namespace vlsipart {

struct StartRecord {
  Weight cut = 0;
  double cpu_seconds = 0.0;
  bool feasible = false;
};

struct MultistartResult {
  std::vector<StartRecord> starts;
  std::vector<PartId> best_parts;
  Weight best_cut = 0;
  /// Sum of per-start thread-CPU seconds — the paper's CPU-time axis;
  /// invariant (up to timer noise) under the thread count.
  double total_cpu_seconds = 0.0;
  /// Wall-clock of the whole harness call; shrinks with more threads.
  double wall_seconds = 0.0;
  std::size_t threads_used = 1;
  /// Gain-update work summed over all starts (run_multistart only; the
  /// pruned/budgeted regimes leave it zero).  Integer sums over a fixed
  /// start set, so thread-count-invariant like everything else here.
  UpdateWork update_work;

  Weight min_cut() const;
  double avg_cut() const;
  double avg_cpu_seconds() const;
  /// Retained sample of cuts for order-statistic math (BSF curves).
  Sample cut_sample() const;
  Sample time_sample() const;
};

/// Run `num_starts` independent starts on up to `num_threads` threads.
/// Each start's feasibility is audited with check_solution(); infeasible
/// results are recorded but never become best_parts.  num_threads <= 1
/// runs the serial path; > 1 requires partitioner.clone() (engines that
/// return nullptr fall back to serial).
MultistartResult run_multistart(const PartitionProblem& problem,
                                Bipartitioner& partitioner,
                                std::size_t num_starts, std::uint64_t seed,
                                std::size_t num_threads = 1);

/// Start pruning (Sec. 3.2): "pruning (early termination of starts that
/// appear unpromising relative to previous starts) can be applied".
/// A start is abandoned after its first FM pass if that pass's cut
/// exceeds `factor` times the best first-pass cut seen so far.
struct PruneConfig {
  double factor = 1.10;
};

struct PrunedMultistartResult {
  MultistartResult result;
  std::size_t pruned_starts = 0;
  /// CPU spent on starts that were pruned (the saved work is the
  /// difference against an unpruned run).
  double pruned_cpu_seconds = 0.0;
};

/// Pruned multistart of the flat FM engine.  Pruned starts are recorded
/// in result.starts with the cut they had when abandoned (marked
/// infeasible so they never become best_parts), mirroring how a
/// practical implementation would discard them.  In the parallel path
/// the "previous starts" a start is judged against are exactly starts
/// 0..i-1 (workers briefly wait for lower-index first passes to publish),
/// so the pruned set is thread-count-invariant.
PrunedMultistartResult run_multistart_pruned(const PartitionProblem& problem,
                                             const FmConfig& config,
                                             std::size_t num_starts,
                                             std::uint64_t seed,
                                             const PruneConfig& prune,
                                             std::size_t num_threads = 1);

/// Budgeted multistart — the paper's actual use model (Sec. 3.2): keep
/// launching independent starts while the consumed CPU stays below
/// `cpu_budget_seconds`; at least one start always runs.  This is the
/// regime behind the BSF curve's tau axis ("the solution cost that the
/// algorithm is expected to achieve in a multistart regime, versus the
/// given CPU time budget tau").  A cap of `max_starts` bounds the run on
/// very fast instances (0 = unbounded).  The parallel path runs starts
/// speculatively and then admits the same prefix the serial rule would:
/// the minimal prefix whose accumulated per-start CPU reaches the budget
/// (or the max_starts cap); speculative starts past the cutoff are
/// discarded and charged to neither the records nor total_cpu_seconds.
MultistartResult run_multistart_budgeted(const PartitionProblem& problem,
                                         Bipartitioner& partitioner,
                                         double cpu_budget_seconds,
                                         std::uint64_t seed,
                                         std::size_t max_starts = 0,
                                         std::size_t num_threads = 1);

}  // namespace vlsipart
