#include "src/part/core/parallel_refine.h"

#include <algorithm>
#include <mutex>

#include "src/util/logging.h"
#include "src/util/shard.h"

namespace vlsipart {

// hot-path: root
CommitOutcome commit_proposals(const PartitionProblem& problem,
                               PartitionState& state,
                               std::span<const MoveProposal> proposals,
                               std::vector<VertexId>& kept_moves,
                               std::vector<std::uint8_t>* moved_scratch) {
  const Hypergraph& g = *problem.graph;
  CommitOutcome out;
  out.cut_before = state.cut();
  kept_moves.clear();

  std::vector<std::uint8_t> local_moved;
  std::vector<std::uint8_t>& moved =
      moved_scratch != nullptr ? *moved_scratch : local_moved;
  if (moved.size() != g.num_vertices()) moved.assign(g.num_vertices(), 0);  // hot-path: allow(per-round reset of reused scratch)

  const BalanceConstraint& balance = problem.balance;
  auto imbalance_of = [&balance](Weight w0) -> Weight {
    if (w0 < balance.min_part()) return balance.min_part() - w0;
    if (w0 > balance.max_part()) return w0 - balance.max_part();
    return 0;
  };

  // Prefix scan: apply every legal move in proposal order, tracking the
  // (imbalance, cut) key after each one.  kept_moves doubles as the
  // applied-move log until the rollback truncates it to the best prefix.
  Weight best_imb = imbalance_of(state.part_weight(0));
  Weight best_cut = state.cut();
  std::size_t best_len = 0;
  for (const MoveProposal& p : proposals) {
    const VertexId v = p.v;
    if (v >= g.num_vertices() || problem.is_fixed(v) || moved[v] != 0) {
      ++out.rejected_other;
      continue;
    }
    const Weight w = g.vertex_weight(v);
    const Weight w0 = state.part_weight(0);
    const PartId from = state.part(v);
    bool legal = balance.move_legal(w0, w, from);
    if (!legal) {
      // Same recovery rule as the serial engine: from an infeasible
      // state, any move that strictly shrinks the violation is allowed.
      const Weight new_w0 = (from == 0) ? w0 - w : w0 + w;
      legal = imbalance_of(new_w0) < imbalance_of(w0);
    }
    if (!legal) {
      ++out.rejected_balance;
      continue;
    }
    state.move(v);
    moved[v] = 1;
    kept_moves.push_back(v);  // hot-path: allow(reused commit log, growth amortized)
    ++out.applied;
    const Weight imb = imbalance_of(state.part_weight(0));
    const Weight cut = state.cut();
    // Strictly-better keeps the earliest best prefix (BestChoice::kFirst
    // semantics), which also guarantees round-loop termination: a
    // non-empty kept prefix always strictly improves the key.
    if (imb < best_imb || (imb == best_imb && cut < best_cut)) {
      best_imb = imb;
      best_cut = cut;
      best_len = kept_moves.size();
    }
  }

  // Roll back the suffix beyond the best prefix (reverse order; each
  // rollback is just the opposite move).
  for (std::size_t i = kept_moves.size(); i > best_len; --i) {
    state.move(kept_moves[i - 1]);
  }
  for (const VertexId v : kept_moves) moved[v] = 0;  // scratch back to zero
  kept_moves.resize(best_len);  // hot-path: allow(shrink only, never reallocates)
  out.kept = best_len;
  out.cut_after = state.cut();
  return out;
}

ParallelFmRefiner::ParallelFmRefiner(const PartitionProblem& problem,
                                     FmConfig config, ThreadPool* pool)
    : problem_(&problem),
      config_(std::move(config)),
      audit_(AuditConfig::resolve(config_.audit)),
      pool_(pool),
      shards_(pool != nullptr ? pool->num_threads() : 1) {
  const Hypergraph& g = *problem_->graph;
  const std::size_t n = g.num_vertices();
  // 32-bit id contract: the VertexId sweep below cannot wrap.
  VP_CHECK(n <= kInvalidVertex, "vertex count " << n << " fits VertexId");
  gain_.assign(n, 0);
  dirty_.assign(n, 1);
  movable_.assign(n, 1);
  for (VertexId v = 0; v < n; ++v) {
    if (problem_->is_fixed(v)) {
      movable_[v] = 0;
    } else if (config_.exclude_oversized &&
               g.vertex_weight(v) > problem_->balance.window()) {
      // Corking fix (Sec. 2.3): a cell heavier than the balance window
      // can never legally move between two feasible solutions.
      movable_[v] = 0;
    }
  }
  shard_proposals_.resize(shards_);
  moved_scratch_.assign(n, 0);
}

Weight ParallelFmRefiner::imbalance(Weight w0) const {
  const BalanceConstraint& b = problem_->balance;
  if (w0 < b.min_part()) return b.min_part() - w0;
  if (w0 > b.max_part()) return w0 - b.max_part();
  return 0;
}

// hot-path: root
std::size_t ParallelFmRefiner::freeze_gains(const PartitionState& state) {
  const std::size_t n = problem_->graph->num_vertices();
  {
    std::lock_guard<std::mutex> lock(work_mutex_);  // hot-path: allow(per-round tally, not per-move)
    round_gains_recomputed_ = 0;
  }
  // Each shard owns a contiguous vertex range: writes to gain_/dirty_
  // are disjoint across workers, state is only read.
  auto freeze_shard = [&](std::size_t shard) {
    const ShardRange r = shard_range(n, shards_, shard);
    std::size_t recomputed = 0;
    for (std::size_t v = r.begin; v < r.end; ++v) {
      if (dirty_[v] == 0 || movable_[v] == 0) continue;
      gain_[v] = state.gain(static_cast<VertexId>(v));
      dirty_[v] = 0;
      ++recomputed;
    }
    std::lock_guard<std::mutex> lock(work_mutex_);  // hot-path: allow(per-shard tally, once per round)
    round_gains_recomputed_ += recomputed;
  };
  if (pool_ != nullptr && shards_ > 1) {
    pool_->parallel_for_dynamic(shards_, freeze_shard);  // hot-path: allow(pool dispatch, once per round)
  } else {
    for (std::size_t s = 0; s < shards_; ++s) freeze_shard(s);
  }
  std::lock_guard<std::mutex> lock(work_mutex_);  // hot-path: allow(per-round tally, not per-move)
  return round_gains_recomputed_;
}

// hot-path: root
void ParallelFmRefiner::propose(const PartitionState& state) {
  const std::size_t n = problem_->graph->num_vertices();
  const Weight w0 = state.part_weight(0);
  const bool infeasible = imbalance(w0) > 0;
  // From an infeasible projection the positive-gain filter would starve
  // the recovery rule, so propose every vertex of the overloaded side
  // and let the commit's exact (imbalance, cut) key sort it out.
  const PartId overloaded =
      w0 > problem_->balance.max_part() ? PartId{0} : PartId{1};

  auto propose_shard = [&](std::size_t shard) {
    const ShardRange r = shard_range(n, shards_, shard);
    std::vector<MoveProposal>& out = shard_proposals_[shard];
    out.clear();
    for (std::size_t v = r.begin; v < r.end; ++v) {
      if (movable_[v] == 0) continue;
      const VertexId vid = static_cast<VertexId>(v);
      if (infeasible ? state.part(vid) != overloaded : gain_[v] <= 0) {
        continue;
      }
      out.push_back(MoveProposal{vid, gain_[v]});  // hot-path: allow(reused per-shard proposal buffer, growth amortized)
    }
  };
  if (pool_ != nullptr && shards_ > 1) {
    pool_->parallel_for_dynamic(shards_, propose_shard);  // hot-path: allow(pool dispatch, once per round)
  } else {
    for (std::size_t s = 0; s < shards_; ++s) propose_shard(s);
  }

  // Merge in shard order = global ascending id order (shard.h lemma),
  // then a stable sort by gain descending keeps equal-gain proposals in
  // ascending id order — the (gain desc, id asc) commit order, reached
  // identically for every shard count.
  proposals_.clear();
  for (const std::vector<MoveProposal>& sp : shard_proposals_) {
    proposals_.insert(proposals_.end(), sp.begin(), sp.end());  // hot-path: allow(reused merge buffer, growth amortized)
  }
  std::stable_sort(proposals_.begin(), proposals_.end(),  // hot-path: allow(proposal order, once per round)
                   [](const MoveProposal& a, const MoveProposal& b) {
                     return a.gain > b.gain;
                   });
}

// hot-path: root
void ParallelFmRefiner::mark_dirty(std::span<const VertexId> kept) {
  const Hypergraph& g = *problem_->graph;
  for (const VertexId v : kept) {
    dirty_[v] = 1;  // covers degree-0 vertices too
    for (const EdgeId e : g.incident_edges(v)) {
      for (const VertexId u : g.pins(e)) dirty_[u] = 1;
    }
  }
}

ParallelFmResult ParallelFmRefiner::refine(PartitionState& state, Rng& rng) {
  (void)rng;  // part of the engine interface; rounds are randomness-free
  VP_CHECK(&state.graph() == problem_->graph,
           "ParallelFmRefiner: state bound to a different hypergraph");
  ParallelFmResult result;
  result.initial_cut = state.cut();

  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{1});

  const std::size_t max_rounds =
      config_.max_passes > 0 ? static_cast<std::size_t>(config_.max_passes)
                             : static_cast<std::size_t>(-1);
  while (result.rounds < max_rounds) {
    ParallelRoundStats stats;
    stats.cut_before = state.cut();
    stats.gains_recomputed = freeze_gains(state);
    propose(state);
    stats.proposals = proposals_.size();

    const CommitOutcome outcome =
        commit_proposals(*problem_, state, proposals_, kept_moves_,
                         &moved_scratch_);
    stats.applied = outcome.applied;
    stats.kept = outcome.kept;
    stats.rejected_balance = outcome.rejected_balance;
    stats.cut_after = outcome.cut_after;

    if (audit_.enabled()) state.audit();

    ++result.rounds;
    result.total_moves += outcome.kept;
    result.round_stats.push_back(stats);
    if (config_.record_trace) result.round_traces.push_back(kept_moves_);
    if (outcome.kept == 0) break;
    mark_dirty(kept_moves_);
  }

  result.final_cut = state.cut();
  return result;
}

}  // namespace vlsipart
