// Balance constraints for 2-way partitioning.
//
// The paper reports at "traditional balance constraints of 2% (partition
// areas between 49% and 51% of total cell area) and 10% (between 45% and
// 55%)" (Sec. 3.2).  A tolerance t therefore allows each part weight to
// deviate +-t/2 from exact bisection.
#pragma once

#include <string>

#include "src/hypergraph/types.h"

namespace vlsipart {

class BalanceConstraint {
 public:
  BalanceConstraint() = default;

  /// tolerance = full window width as a fraction of total weight
  /// (0.02 -> parts in [49%, 51%]).  tolerance 0 = exact bisection
  /// (parts differ by at most the parity remainder).
  static BalanceConstraint from_tolerance(Weight total_weight,
                                          double tolerance);

  /// Explicit bounds; max is clamped to total and min to >= 0.
  static BalanceConstraint from_bounds(Weight total_weight, Weight min_part,
                                       Weight max_part);

  Weight total() const { return total_; }
  Weight min_part() const { return min_; }
  Weight max_part() const { return max_; }
  /// Width of the feasible window (max - min); the corking fix of
  /// Sec. 2.3 excludes cells heavier than this from the gain structure
  /// because they can never move between two feasible solutions.
  Weight window() const { return max_ - min_; }

  /// Is a solution with part-0 weight w0 feasible?
  bool feasible(Weight w0) const { return w0 >= min_ && w0 <= max_; }

  /// Is moving a vertex of weight w from part `from` legal, given current
  /// part-0 weight w0?  Legal = both resulting parts stay in window.
  bool move_legal(Weight w0, Weight w, PartId from) const {
    const Weight new_w0 = (from == 0) ? w0 - w : w0 + w;
    return feasible(new_w0);
  }

  std::string to_string() const;

 private:
  Weight total_ = 0;
  Weight min_ = 0;
  Weight max_ = 0;
};

}  // namespace vlsipart
