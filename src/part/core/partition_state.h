// Incremental 2-way partition state: assignment, per-net pin counts,
// part weights and cut, all maintained in O(degree) per move.
//
// This is the "measurement instrument" of the testbed — every engine
// (flat LIFO/CLIP FM, ML refinement) manipulates a PartitionState, and
// audit() recomputes everything from scratch so tests can verify that the
// incremental bookkeeping never drifts (a classic source of the silent
// implementation bugs the paper warns about).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/part/core/balance.h"

namespace vlsipart {

/// A partitioning problem instance: hypergraph + balance + fixed vertices.
/// `fixed[v] == kNoPart` means v is free; otherwise v must stay in
/// fixed[v] (terminal propagation / pad locations, Sec. 2.1).
struct PartitionProblem {
  const Hypergraph* graph = nullptr;
  BalanceConstraint balance;
  std::vector<PartId> fixed;  // empty = all free

  bool is_fixed(VertexId v) const {
    return !fixed.empty() && fixed[v] != kNoPart;
  }
};

/// Pre-move per-net pin counts of the nets incident to a moved vertex,
/// filled by PartitionState::move(v, counts) in the same walk that
/// applies the move (no separate snapshot pass).  Interleaved layout:
/// old_pins[2*i + p] is the count of pins in part p of
/// graph().incident_edges(v)[i] *before* the move — one sequential
/// stream, both sides of a net on the same cache line.  The post-move
/// counts need no storage: the moved vertex's source side lost exactly
/// one pin and the destination side gained exactly one, so callers
/// derive them (old-1 / old+1) instead of re-reading the state's
/// scattered counters.  Callers own the struct so its buffer is reused
/// across moves.
struct MoveNetCounts {
  std::vector<std::uint32_t> old_pins;

  std::uint32_t old_in(std::size_t net_index, PartId p) const {
    return old_pins[2 * net_index + p];
  }
};

class PartitionState {
 public:
  /// Binds to a hypergraph; all vertices start unassigned (kNoPart).
  explicit PartitionState(const Hypergraph& h);

  const Hypergraph& graph() const { return *h_; }

  /// Bulk-assign all vertices (each entry 0 or 1) and recompute all
  /// derived quantities in O(pins).
  void assign(std::span<const PartId> parts);

  /// Move one vertex to the other side; O(degree(v)) update of pin
  /// counts, part weights and cut.
  void move(VertexId v);

  /// Like move(v), but additionally records the pre-move pin counts of
  /// every incident net into `counts` — the inputs of the FM
  /// "four cut values" delta-gain update — without a second pass over
  /// the incidence lists.
  void move(VertexId v, MoveNetCounts& counts);

  PartId part(VertexId v) const { return parts_[v]; }
  const std::vector<PartId>& parts() const { return parts_; }

  Weight part_weight(PartId p) const { return part_weight_[p]; }
  /// Number of pins of edge e currently in part p.  The two per-part
  /// counters of a net are interleaved (slot 2e+p) so every per-move net
  /// transition — and every gain recomputation — touches one cache line
  /// per net instead of one per (net, part).
  std::uint32_t pins_in(EdgeId e, PartId p) const {
    return pins_in_[2 * static_cast<std::size_t>(e) + p];
  }
  bool edge_cut(EdgeId e) const {
    const std::size_t base = 2 * static_cast<std::size_t>(e);
    return pins_in_[base] > 0 && pins_in_[base + 1] > 0;
  }

  /// Weighted cut: sum of weights of edges spanning both parts.  This is
  /// the paper's standard "cut size" objective (unweighted nets -> number
  /// of cut nets).
  Weight cut() const { return cut_; }

  /// FM gain of moving v to the other side under the cut objective:
  /// sum over incident nets e of
  ///   +w(e) if v is the only pin of its part on e  (net becomes uncut)
  ///   -w(e) if the other part has no pin on e      (net becomes cut).
  Gain gain(VertexId v) const;

  /// Recompute everything from the assignment and compare against the
  /// incrementally maintained values; throws std::logic_error on any
  /// mismatch.  O(pins).
  void audit() const;

 private:
  template <bool kRecord>
  void move_impl(VertexId v, MoveNetCounts* counts);

  const Hypergraph* h_;
  std::vector<PartId> parts_;
  std::array<Weight, 2> part_weight_{0, 0};
  /// Interleaved per-net pin counts: slot 2e+p = pins of e in part p.
  std::vector<std::uint32_t> pins_in_;
  Weight cut_ = 0;
};

/// Recompute the cut of an assignment without building a state. O(pins).
Weight compute_cut(const Hypergraph& h, std::span<const PartId> parts);

/// Part weights of an assignment. O(V).
std::array<Weight, 2> compute_part_weights(const Hypergraph& h,
                                           std::span<const PartId> parts);

/// Full feasibility audit of a solution against a problem: every vertex
/// assigned 0/1, fixed vertices respected, balance satisfied.
/// Returns an empty string if OK, else a description of the violation.
std::string check_solution(const PartitionProblem& problem,
                           std::span<const PartId> parts);

/// As above, but additionally recomputes the cut from scratch and rejects
/// the solution when it disagrees with `claimed_cut` — the check that
/// catches an engine whose incremental bookkeeping drifted from the
/// assignment it reports.
std::string check_solution(const PartitionProblem& problem,
                           std::span<const PartId> parts, Weight claimed_cut);

}  // namespace vlsipart
