// Initial solution generation for move-based partitioners.
//
// Hauck and Borriello [20] "note the effect of initial solution
// generation" as a hidden implementation decision; we expose the two
// standard generators explicitly.  Both respect fixed-vertex constraints
// and aim for a feasible (balance-satisfying) start.
#pragma once

#include <vector>

#include "src/part/core/partition_state.h"
#include "src/util/rng.h"

namespace vlsipart {

/// Randomized feasible start: free vertices are considered in descending
/// weight order (randomly shuffled within equal weights); each goes to a
/// uniformly random side among those where it still fits, or to the
/// lighter side if it fits nowhere.  Macro-heavy ISPD98-style instances
/// thus get balanced starts with probability ~1 even at 2% tolerance.
std::vector<PartId> random_initial(const PartitionProblem& problem, Rng& rng);

/// Deterministic LPT bisection: descending weight, always to the lighter
/// side.  Used for single-start deterministic flows and tests.
std::vector<PartId> lpt_initial(const PartitionProblem& problem);

/// BFS region growing: part 0 grows hyperedge-by-hyperedge from a random
/// free seed vertex until it reaches half the total weight; the rest is
/// part 1.  Produces connected, low-cut starts — the "initial solution
/// generator" alternative of Hauck-Borriello [20], also standard at the
/// coarsest level of multilevel partitioners [25].  Fixed part-0
/// vertices pre-seed the region; the start may be infeasible on macro-
/// heavy instances (FM's recovery rule then rebalances).
std::vector<PartId> bfs_initial(const PartitionProblem& problem, Rng& rng);

/// Initial-solution generator selection for engines that expose it.
enum class InitialScheme : std::uint8_t {
  kRandom = 0,  ///< randomized LPT (random_initial)
  kBfs = 1,     ///< BFS region growing (bfs_initial)
  kMixed = 2,   ///< alternate random/BFS across tries
};

const char* name_of(InitialScheme scheme);

/// Dispatch on scheme; `try_index` selects the branch under kMixed.
std::vector<PartId> make_initial(const PartitionProblem& problem,
                                 InitialScheme scheme, std::size_t try_index,
                                 Rng& rng);

}  // namespace vlsipart
