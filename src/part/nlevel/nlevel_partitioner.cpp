#include "src/part/nlevel/nlevel_partitioner.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace vlsipart {

namespace {

/// Same derivation rule as CoarsenConfig (coarsen.cpp): clusters stay
/// well below the balance window and never below the heaviest vertex.
Weight derived_max_cluster_weight(const Hypergraph& h,
                                  const NlevelConfig& config) {
  if (config.max_cluster_weight > 0) return config.max_cluster_weight;
  const Weight cap = std::max<Weight>(
      1, h.total_vertex_weight() /
             static_cast<Weight>(std::max<std::size_t>(config.coarsen_to, 32)));
  return std::max(cap, h.max_vertex_weight());
}

}  // namespace

NlevelPartitioner::NlevelPartitioner(NlevelConfig config, std::string name)
    : config_(config), name_(std::move(name)) {
  if (name_.empty()) name_ = "nlevel";
}

std::unique_ptr<Bipartitioner> NlevelPartitioner::clone() const {
  return std::make_unique<NlevelPartitioner>(config_, name_);
}

bool NlevelPartitioner::movable(const PartitionProblem& problem,
                                VertexId c) const {
  if (!problem.fixed.empty() && problem.fixed[c] != kNoPart) return false;
  // A cluster heavier than the balance window can never move between two
  // feasible solutions (the corking exclusion, Sec. 2.3).
  return graph_.cluster_weight(c) <= problem.balance.window();
}

VertexId NlevelPartitioner::best_partner(VertexId u, Weight max_cw,
                                         const std::vector<PartId>& fixed,
                                         double* rating_out) {
  rated_.clear();
  for (const EdgeId e : graph_.incident_edges(u)) {
    const std::size_t sz = graph_.edge_size(e);
    if (sz < 2 || sz > config_.max_rated_net_size) continue;
    const double score = static_cast<double>(graph_.edge_weight(e)) /
                         static_cast<double>(sz - 1);
    for (const VertexId c : graph_.pins(e)) {
      if (c == u) continue;
      if (rating_[c] == 0.0) rated_.push_back(c);
      rating_[c] += score;
    }
  }
  double best_r = 0.0;
  VertexId best = kInvalidVertex;
  const Weight wu = graph_.cluster_weight(u);
  for (const VertexId c : rated_) {
    const double r = rating_[c];
    rating_[c] = 0.0;
    if (!fixed.empty() && fixed[c] != kNoPart) continue;
    if (wu + graph_.cluster_weight(c) > max_cw) continue;
    if (best == kInvalidVertex || r > best_r || (r == best_r && c < best)) {
      best_r = r;
      best = c;
    }
  }
  *rating_out = best_r;
  return best;
}

void NlevelPartitioner::coarsen(const PartitionProblem& problem,
                                Weight max_cw) {
  const std::size_t n = graph_.num_vertices();
  const std::vector<PartId>& fixed = problem.fixed;
  // bind() enforced the 32-bit id contract; the VertexId sweep below
  // cannot wrap.
  VP_CHECK(n <= kInvalidVertex, "vertex count " << n << " fits VertexId");
  rating_.assign(n, 0.0);

  // Lazy max-heap keyed (rating desc, id asc).  Entries go stale as
  // neighborhoods contract; a popped entry is re-rated and either
  // contracted (rating not lower than advertised) or reinserted with its
  // fresh, lower rating.
  using Entry = std::pair<double, VertexId>;
  const auto lower_priority = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(lower_priority)> pq(
      lower_priority);
  for (VertexId v = 0; v < n; ++v) {
    if (!fixed.empty() && fixed[v] != kNoPart) continue;
    double r = 0.0;
    if (best_partner(v, max_cw, fixed, &r) != kInvalidVertex) {
      pq.push(Entry{r, v});
    }
  }
  while (graph_.num_active() > config_.coarsen_to && !pq.empty()) {
    const Entry top = pq.top();
    pq.pop();
    const VertexId v = top.second;
    if (!graph_.active(v)) continue;
    double r = 0.0;
    const VertexId partner = best_partner(v, max_cw, fixed, &r);
    if (partner == kInvalidVertex) continue;
    if (r < top.first) {
      pq.push(Entry{r, v});
      continue;
    }
    graph_.contract(v, partner);
    double r2 = 0.0;
    if (best_partner(v, max_cw, fixed, &r2) != kInvalidVertex) {
      pq.push(Entry{r2, v});
    }
  }
}

void NlevelPartitioner::solve_coarsest(const PartitionProblem& problem,
                                       Rng& rng) {
  const Hypergraph& h = *problem.graph;
  graph_.current_clusters(cluster_scratch_);
  const ContractionResult cr =
      contract(h, cluster_scratch_, &contraction_memory_);

  PartitionProblem coarse_problem;
  coarse_problem.graph = &cr.coarse;
  coarse_problem.balance = problem.balance;
  if (!problem.fixed.empty()) {
    // Project fixed constraints onto the clusters (the coarsening never
    // merges differently-fixed vertices — best_partner skips them).
    std::vector<PartId> coarse_fixed(cr.coarse.num_vertices(), kNoPart);
    for (std::size_t v = 0; v < problem.fixed.size(); ++v) {
      if (problem.fixed[v] == kNoPart) continue;
      PartId& slot = coarse_fixed[cr.fine_to_coarse[v]];
      VP_CHECK(slot == kNoPart || slot == problem.fixed[v],
               "n-level coarsening merged fixed vertices of different parts");
      slot = problem.fixed[v];
    }
    coarse_problem.fixed = std::move(coarse_fixed);
  }

  FmRefiner refiner(coarse_problem, config_.refine);
  std::vector<PartId> coarse_parts;
  Weight best = std::numeric_limits<Weight>::max();
  bool best_feasible = false;
  for (std::size_t t = 0; t < std::max<std::size_t>(1, config_.initial_tries);
       ++t) {
    std::vector<PartId> trial =
        make_initial(coarse_problem, config_.initial_scheme, t, rng);
    PartitionState state(cr.coarse);
    state.assign(trial);
    work_.absorb(refiner.refine(state, rng).update_work());
    const bool feasible =
        check_solution(coarse_problem, state.parts()).empty();
    const Weight cut = state.cut();
    if (coarse_parts.empty() ||
        (feasible && (!best_feasible || cut < best))) {
      coarse_parts = state.parts();
      best = cut;
      best_feasible = feasible;
    }
  }

  // Cluster ids fit VertexId (bind() contract), so a VertexId counter
  // covers the whole range.
  VP_CHECK(graph_.num_vertices() <= kInvalidVertex, "cluster ids fit VertexId");
  side_.assign(graph_.num_vertices(), 0);
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    if (graph_.active(v)) side_[v] = coarse_parts[cr.fine_to_coarse[v]];
  }
}

Gain NlevelPartitioner::cluster_gain(VertexId c) const {
  const PartId from = side_[c];
  Gain g = 0;
  for (const EdgeId e : graph_.incident_edges(c)) {
    const Weight w = graph_.edge_weight(e);
    const std::uint32_t* ps = &pins_side_[2 * static_cast<std::size_t>(e)];
    if (ps[from] == 1) g += w;
    if (ps[from ^ 1] == 0) g -= w;
  }
  return g;
}

void NlevelPartitioner::flip(VertexId c) {
  const PartId from = side_[c];
  const PartId to = from ^ 1;
  for (const EdgeId e : graph_.incident_edges(c)) {
    std::uint32_t* ps = &pins_side_[2 * static_cast<std::size_t>(e)];
    const Weight w = graph_.edge_weight(e);
    if (ps[to] == 0 && ps[from] > 1) {
      cut_ += w;
    } else if (ps[from] == 1 && ps[to] > 0) {
      cut_ -= w;
    }
    --ps[from];
    ++ps[to];
  }
  const Weight wt = graph_.cluster_weight(c);
  part_weight_[from] -= wt;
  part_weight_[to] += wt;
  side_[c] = to;
}

void NlevelPartitioner::local_search(const PartitionProblem& problem,
                                     VertexId u, VertexId v) {
  ++epoch_;
  buckets_->reset(graph_.max_weighted_degree());

  const auto activate = [&](VertexId c) {
    if (locked_epoch_[c] == epoch_ || buckets_->contains(c)) return;
    if (!movable(problem, c)) return;
    buckets_->push_front(c, side_[c], cluster_gain(c));
  };
  activate(u);
  activate(v);

  // (imbalance excess, cut) — lexicographic, so a search entered with an
  // infeasible assignment prefers restoring feasibility.
  const auto state_key = [&] {
    const Weight w0 = part_weight_[0];
    Weight excess = 0;
    if (w0 > problem.balance.max_part()) excess = w0 - problem.balance.max_part();
    if (w0 < problem.balance.min_part()) excess = problem.balance.min_part() - w0;
    return std::pair<Weight, Weight>(excess, cut_);
  };

  // Highest-gain balance-legal candidate over both sides: the side with
  // the higher max key is scanned first (ties: side 0), each bucket from
  // its head.
  const auto select = [&]() -> VertexId {
    int order[2] = {0, 1};
    const bool has0 = buckets_->size(0) > 0;
    const bool has1 = buckets_->size(1) > 0;
    if (has0 && has1 && buckets_->max_key(1) > buckets_->max_key(0)) {
      order[0] = 1;
      order[1] = 0;
    } else if (!has0 && has1) {
      order[0] = 1;
      order[1] = 0;
    }
    for (const int g : order) {
      if (buckets_->size(g) == 0) continue;
      for (Gain k = buckets_->max_key(g);
           k >= buckets_->min_representable_key();
           k = buckets_->next_nonempty_below(g, k)) {
        for (VertexId c = buckets_->front(g, k); c != kInvalidVertex;
             c = buckets_->next(c)) {
          if (problem.balance.move_legal(part_weight_[0],
                                         graph_.cluster_weight(c),
                                         side_[c])) {
            return c;
          }
        }
      }
    }
    return kInvalidVertex;
  };

  local_moves_.clear();
  auto best_key = state_key();
  std::size_t best_prefix = 0;
  std::size_t since_best = 0;
  while (since_best < config_.local_moves_past_best) {
    const VertexId c = select();
    if (c == kInvalidVertex) break;
    buckets_->erase(c);
    locked_epoch_[c] = epoch_;
    flip(c);
    local_moves_.push_back(LocalMove{c});
    const auto key = state_key();
    if (key < best_key) {
      best_key = key;
      best_prefix = local_moves_.size();
      since_best = 0;
    } else {
      ++since_best;
    }
    for (const EdgeId e : graph_.incident_edges(c)) {
      for (const VertexId x : graph_.pins(e)) {
        if (x == c || locked_epoch_[x] == epoch_) continue;
        if (buckets_->contains(x)) {
          work_.nets_walked += graph_.incident_edges(x).size();
          ++work_.nonzero_delta_updates;
          buckets_->move_to(x, cluster_gain(x), /*front=*/true);
        } else {
          activate(x);
        }
      }
    }
  }
  while (local_moves_.size() > best_prefix) {
    flip(local_moves_.back().c);
    local_moves_.pop_back();
  }
}

Weight NlevelPartitioner::run(const PartitionProblem& problem, Rng& rng,
                              std::vector<PartId>& parts) {
  const Hypergraph& h = *problem.graph;
  const std::size_t n = h.num_vertices();
  const std::size_t m = h.num_edges();
  // 32-bit id contract: VertexId/EdgeId counters below cannot wrap.
  VP_CHECK(n <= kInvalidVertex, "vertex count " << n << " fits VertexId");
  VP_CHECK(m <= kInvalidEdge, "edge count " << m << " fits EdgeId");
  const AuditConfig audit = AuditConfig::resolve(config_.refine.audit);

  graph_.bind(h);
  coarsen(problem, derived_max_cluster_weight(h, config_));
  solve_coarsest(problem, rng);

  // Partition bookkeeping at cluster granularity.
  pins_side_.assign(2 * m, 0);
  part_weight_[0] = 0;
  part_weight_[1] = 0;
  cut_ = 0;
  for (EdgeId e = 0; e < m; ++e) {
    for (const VertexId c : graph_.pins(e)) {
      ++pins_side_[2 * static_cast<std::size_t>(e) + side_[c]];
    }
    const std::uint32_t* ps = &pins_side_[2 * static_cast<std::size_t>(e)];
    if (ps[0] > 0 && ps[1] > 0) cut_ += h.edge_weight(e);
  }
  for (VertexId c = 0; c < n; ++c) {
    if (graph_.active(c)) part_weight_[side_[c]] += graph_.cluster_weight(c);
  }

  if (buckets_ == nullptr || n != bucket_n_) {
    buckets_ = std::make_unique<BucketArray<2>>(n);
    bucket_n_ = n;
  }
  locked_epoch_.assign(n, 0);
  epoch_ = 0;

  // Uncontract one vertex per level; localized FM after each split.
  while (graph_.num_contractions() > 0) {
    reactivated_.clear();
    const NlevelGraph::Uncontracted uc = graph_.uncontract(&reactivated_);
    side_[uc.v] = side_[uc.u];
    for (const EdgeId e : reactivated_) {
      ++pins_side_[2 * static_cast<std::size_t>(e) + side_[uc.u]];
    }
    local_search(problem, uc.u, uc.v);
    if (audit.enabled()) {
      // Cheap incremental audit: the maintained cut must match the pin
      // counts, and the part weights must match the active clusters.
      Weight cut = 0;
      for (EdgeId e = 0; e < m; ++e) {
        const std::uint32_t* ps =
            &pins_side_[2 * static_cast<std::size_t>(e)];
        if (ps[0] > 0 && ps[1] > 0) cut += h.edge_weight(e);
      }
      VP_CHECK(cut == cut_, "nlevel audit: pin-count cut " << cut
                              << " != maintained cut " << cut_);
      Weight w[2] = {0, 0};
      for (VertexId c = 0; c < n; ++c) {
        if (graph_.active(c)) w[side_[c]] += graph_.cluster_weight(c);
      }
      VP_CHECK(w[0] == part_weight_[0] && w[1] == part_weight_[1],
               "nlevel audit: part weights drifted");
    }
  }

  parts.assign(side_.begin(), side_.end());
  if (audit.enabled()) {
    const Weight cut = compute_cut(h, parts);
    VP_CHECK(cut == cut_, "nlevel audit: final cut " << cut
                            << " != maintained cut " << cut_);
  }

  if (config_.final_refine) {
    PartitionState state(h);
    state.assign(parts);
    FmRefiner refiner(problem, config_.refine);
    work_.absorb(refiner.refine(state, rng).update_work());
    parts = state.parts();
    cut_ = state.cut();
  }
  return cut_;
}

}  // namespace vlsipart
