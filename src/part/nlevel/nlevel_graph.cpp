#include "src/part/nlevel/nlevel_graph.h"

#include <algorithm>

#include "src/util/checked_narrow.h"

namespace vlsipart {

void NlevelGraph::bind(const Hypergraph& h) {
  h_ = &h;
  const std::size_t n = h.num_vertices();
  const std::size_t m = h.num_edges();
  // Ids stay below the 32-bit sentinels, so VertexId/EdgeId counters
  // below cannot wrap.
  VP_CHECK(n <= kInvalidVertex, "vertex count " << n << " fits VertexId");
  VP_CHECK(m <= kInvalidEdge, "edge count " << m << " fits EdgeId");

  pin_data_.resize(h.num_pins());
  pin_begin_.resize(m);
  pin_size_.resize(m);
  std::size_t offset = 0;
  for (EdgeId e = 0; e < m; ++e) {
    const auto pins = h.pins(e);
    pin_begin_[e] = offset;
    // A net's pin count is bounded by the vertex count, which fits 32 bits.
    pin_size_[e] = vp::checked_narrow<std::uint32_t>(pins.size());
    std::copy(pins.begin(), pins.end(), pin_data_.begin() + offset);
    offset += pins.size();
  }

  incidence_.resize(n);
  weight_.resize(n);
  wdeg_.resize(n);
  active_.assign(n, 1);
  absorbed_into_.resize(n);
  max_wdeg_ = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto edges = h.incident_edges(v);
    incidence_[v].assign(edges.begin(), edges.end());
    weight_[v] = h.vertex_weight(v);
    absorbed_into_[v] = v;
    Weight wd = 0;
    for (const EdgeId e : edges) wd += h.edge_weight(e);
    wdeg_[v] = wd;
    max_wdeg_ = std::max(max_wdeg_, wd);
  }
  ops_.clear();
  mementos_.clear();
  num_active_ = n;
}

void NlevelGraph::contract(VertexId u, VertexId v) {
  VP_DCHECK(u != v, "contract needs two distinct clusters");
  VP_DCHECK(active_[u] != 0 && active_[v] != 0,
            "contract operands must be active");
  Memento m;
  m.u = u;
  m.v = v;
  // Incidence lists and the pin-op log are bounded by the pin count,
  // which the 32-bit id contract keeps representable.
  m.u_incidence_prev = vp::checked_narrow<std::uint32_t>(incidence_[u].size());
  m.ops_begin = vp::checked_narrow<std::uint32_t>(ops_.size());

  Weight appended_weight = 0;
  for (const EdgeId e : incidence_[v]) {
    VertexId* p = pin_data_.data() + pin_begin_[e];
    const std::uint32_t sz = pin_size_[e];
    std::uint32_t pos_v = sz;
    bool has_u = false;
    for (std::uint32_t i = 0; i < sz; ++i) {
      if (p[i] == v) {
        pos_v = i;
      } else if (p[i] == u) {
        has_u = true;
      }
    }
    VP_DCHECK(pos_v < sz, "absorbed cluster is a pin of its incident net");
    if (has_u) {
      // Shared net: swap-remove v's slot into the inactive tail.
      ops_.push_back(PinOp{e, pos_v, /*removed=*/true});
      std::swap(p[pos_v], p[sz - 1]);
      pin_size_[e] = sz - 1;
    } else {
      // v's private net: rewrite the slot and hand the net to u.
      ops_.push_back(PinOp{e, pos_v, /*removed=*/false});
      p[pos_v] = u;
      incidence_[u].push_back(e);
      appended_weight += h_->edge_weight(e);
    }
  }

  weight_[u] += weight_[v];
  wdeg_[u] += appended_weight;
  max_wdeg_ = std::max(max_wdeg_, wdeg_[u]);
  active_[v] = 0;
  absorbed_into_[v] = u;
  --num_active_;
  mementos_.push_back(m);
}

NlevelGraph::Uncontracted NlevelGraph::uncontract(
    std::vector<EdgeId>* reactivated) {
  VP_CHECK(!mementos_.empty(), "uncontract needs a contraction to undo");
  const Memento m = mementos_.back();
  mementos_.pop_back();

  Weight appended_weight = 0;
  for (std::size_t k = incidence_[m.u].size(); k-- > m.u_incidence_prev;) {
    appended_weight += h_->edge_weight(incidence_[m.u][k]);
  }
  incidence_[m.u].resize(m.u_incidence_prev);

  // Ops undone in reverse restore the pin arrays exactly, so position
  // records of older mementos stay valid for their own undo.
  for (std::size_t i = ops_.size(); i-- > m.ops_begin;) {
    const PinOp& op = ops_[i];
    VertexId* p = pin_data_.data() + pin_begin_[op.e];
    if (op.removed) {
      const std::uint32_t sz = pin_size_[op.e];
      pin_size_[op.e] = sz + 1;
      std::swap(p[op.pos], p[sz]);
      if (reactivated != nullptr) reactivated->push_back(op.e);
    } else {
      p[op.pos] = m.v;
    }
  }
  ops_.resize(m.ops_begin);

  weight_[m.u] -= weight_[m.v];
  wdeg_[m.u] -= appended_weight;
  active_[m.v] = 1;
  absorbed_into_[m.v] = m.v;
  ++num_active_;
  return Uncontracted{m.u, m.v};
}

void NlevelGraph::current_clusters(std::vector<VertexId>& out) const {
  const std::size_t n = num_vertices();
  // bind() established n <= kInvalidVertex; restated so the VertexId
  // sweep below is locally provably wrap-free.
  VP_CHECK(n <= kInvalidVertex, "vertex count " << n << " fits VertexId");
  out.assign(n, kInvalidVertex);
  std::vector<VertexId> chain;
  for (VertexId v = 0; v < n; ++v) {
    if (out[v] != kInvalidVertex) continue;
    chain.clear();
    VertexId x = v;
    while (active_[x] == 0 && out[x] == kInvalidVertex) {
      chain.push_back(x);
      x = absorbed_into_[x];
    }
    const VertexId root = active_[x] != 0 ? x : out[x];
    out[v] = root;
    for (const VertexId y : chain) out[y] = root;
  }
}

}  // namespace vlsipart
