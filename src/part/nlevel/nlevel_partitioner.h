// n-level bipartitioner (arXiv 1505.00693 made to fit this testbed):
// contract exactly ONE vertex per level with a heavy-edge priority queue,
// solve the coarsest graph with the configured FM engine, then uncontract
// one vertex at a time, running a LOCALIZED FM search after every
// uncontraction that seeds the gain buckets only from the uncontracted
// pair and grows the frontier through touched nets.
//
// Compared with the multilevel engine (src/part/ml), the hierarchy is as
// fine-grained as it can be: every intermediate size between n and the
// coarsest level exists, so refinement acts at every granularity.  The
// price is paid in data-structure dynamics, not graph rebuilds: the
// NlevelGraph undo log makes each uncontraction O(degree of the split
// vertex), and the localized searches ride the same BucketArray kernel
// as the flat refiner (sparse reset, so a search touching t vertices
// costs O(t), not O(n)).
//
// Determinism: a run is a pure function of (problem, config, rng state).
// The contraction order comes from a lazily re-rated max-heap ordered by
// (rating desc, id asc); ratings accumulate in incidence order; localized
// selection scans buckets from the max key down, head first.  No step
// consults iteration order of any unordered container, thread timing, or
// addresses, so multistart parallelism over clones is bit-identical at
// any thread count (the same argument as every other engine here).
#pragma once

#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/hypergraph/contraction.h"
#include "src/part/core/bucket_array.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/part/core/partitioner.h"
#include "src/part/nlevel/nlevel_graph.h"

namespace vlsipart {

struct NlevelConfig {
  /// Stop contracting when this many clusters remain (the coarsest graph
  /// handed to the initial-solution FM).
  std::size_t coarsen_to = 96;
  /// Clusters never exceed this weight (0 = derive from total weight,
  /// same rule as CoarsenConfig).
  Weight max_cluster_weight = 0;
  /// Nets larger than this contribute nothing to heavy-edge ratings.
  std::size_t max_rated_net_size = 64;
  /// Initial solutions tried at the coarsest level (best feasible kept).
  std::size_t initial_tries = 8;
  /// Generator for those tries.
  InitialScheme initial_scheme = InitialScheme::kRandom;
  /// A localized search stops after this many consecutive non-improving
  /// moves (the adaptive stop of n-level refinement), then rolls back to
  /// the best prefix.
  std::size_t local_moves_past_best = 16;
  /// Run one full flat-FM refine on the final (fully uncontracted)
  /// assignment.  The localized searches only ever see boundary
  /// neighborhoods; the final sweep catches cross-cut moves they missed.
  bool final_refine = true;
  /// FM policy for the coarsest solve and the final sweep.  The n-level
  /// phase itself is serial by construction (refine_threads is ignored
  /// inside a start; parallelism comes from multistart over clones).
  FmConfig refine;
};

class NlevelPartitioner final : public Bipartitioner {
 public:
  explicit NlevelPartitioner(NlevelConfig config, std::string name = {});

  std::string name() const override { return name_; }
  Weight run(const PartitionProblem& problem, Rng& rng,
             std::vector<PartId>& parts) override;
  /// Reusable scratch only, no solution state: a clone is a fresh
  /// instance of the same configuration (enables parallel multistart).
  std::unique_ptr<Bipartitioner> clone() const override;
  UpdateWork update_work() const override { return work_; }

  const NlevelConfig& config() const { return config_; }

 private:
  /// Heavy-edge rating of u against every active neighbor; returns the
  /// best admissible partner (highest rating, ties to the lowest id) or
  /// kInvalidVertex.  `rating_out` receives the winning rating.
  VertexId best_partner(VertexId u, Weight max_cw,
                        const std::vector<PartId>& fixed, double* rating_out);

  /// Contract down to config_.coarsen_to clusters (or until no
  /// admissible pair remains) using the lazy max-heap.
  void coarsen(const PartitionProblem& problem, Weight max_cw);

  /// Solve the coarsest graph: materialize it through contract(), try
  /// initial_tries FM-refined starts, write the winner into side_.
  void solve_coarsest(const PartitionProblem& problem, Rng& rng);

  Gain cluster_gain(VertexId c) const;
  bool movable(const PartitionProblem& problem, VertexId c) const;
  /// Flip c to the other side, maintaining pins_side_/part_weight_/cut_.
  void flip(VertexId c);
  /// One localized FM search seeded from the freshly uncontracted pair.
  void local_search(const PartitionProblem& problem, VertexId u, VertexId v);

  NlevelConfig config_;
  std::string name_;
  UpdateWork work_;
  NlevelGraph graph_;
  ContractionMemory contraction_memory_;

  // Coarsening scratch.
  std::vector<double> rating_;
  std::vector<VertexId> rated_;

  // Uncontraction/refinement state at cluster granularity.
  std::vector<PartId> side_;
  std::vector<std::uint32_t> pins_side_;
  Weight part_weight_[2] = {0, 0};
  Weight cut_ = 0;
  std::unique_ptr<BucketArray<2>> buckets_;
  std::size_t bucket_n_ = 0;
  std::vector<std::uint32_t> locked_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<EdgeId> reactivated_;
  struct LocalMove {
    VertexId c = 0;
  };
  std::vector<LocalMove> local_moves_;
  std::vector<VertexId> cluster_scratch_;
};

}  // namespace vlsipart
