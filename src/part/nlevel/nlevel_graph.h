// Dynamic cluster-granularity view of a hypergraph supporting n-level
// partitioning: contract exactly one vertex pair at a time, then undo the
// contractions one at a time in reverse (LIFO) order.
//
// The static CSR Hypergraph is immutable, so the multilevel engine
// materializes a fresh coarse graph per level.  With one contraction per
// level that would be O(n) graph builds; this structure instead keeps ONE
// mutable copy of the pin lists and edits it in place:
//
//   * every edge owns a pin array whose ACTIVE PREFIX (pin_size_[e]
//     entries) holds the current cluster ids on that net — absorbing v
//     into u either rewrites v's slot to u (u was not on the net) or
//     swap-removes v's slot into the inactive tail (u already on the
//     net);
//   * every active cluster owns an incidence list; contraction appends
//     the absorbed vertex's non-shared nets to the representative's
//     list (so for an active cluster the list is exactly its nets, with
//     no duplicates);
//   * each contraction records a compact memento: the representative,
//     the absorbed vertex, the representative's previous incidence
//     length, and one (edge, position, removed?) op per touched net.
//
// uncontract() replays the last memento's ops in reverse: a removal is
// undone by growing the active prefix and swapping the slot back, a
// rewrite by restoring v — both restore the pin arrays EXACTLY (not just
// up to permutation), which is what makes the op positions of earlier
// mementos valid when their turn comes.  The undo cost is proportional
// to the absorbed vertex's degree: the O(1)-per-pin undo log of n-level
// partitioning (arXiv 1505.00693), not a rebuild.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/util/logging.h"

namespace vlsipart {

class NlevelGraph {
 public:
  NlevelGraph() = default;

  /// (Re)initialize from `h`, reusing buffer capacity across binds so a
  /// multistart loop pays the allocations once.
  void bind(const Hypergraph& h);

  std::size_t num_vertices() const { return weight_.size(); }
  std::size_t num_edges() const { return pin_begin_.size(); }
  std::size_t num_active() const { return num_active_; }
  std::size_t num_contractions() const { return mementos_.size(); }

  bool active(VertexId c) const { return active_[c] != 0; }
  Weight cluster_weight(VertexId c) const { return weight_[c]; }
  /// Total edge weight incident to cluster c (upper bound on any FM gain
  /// of moving c; monotone under contraction, so the running maximum is
  /// a valid gain-bucket bound for the whole uncontraction phase).
  Weight weighted_degree(VertexId c) const { return wdeg_[c]; }
  Weight max_weighted_degree() const { return max_wdeg_; }

  Weight edge_weight(EdgeId e) const { return h_->edge_weight(e); }

  /// Current active pins (cluster ids) of edge e.
  std::span<const VertexId> pins(EdgeId e) const {
    return {pin_data_.data() + pin_begin_[e], pin_size_[e]};
  }
  std::size_t edge_size(EdgeId e) const { return pin_size_[e]; }

  /// Nets incident to the ACTIVE cluster c (exact, duplicate-free).
  std::span<const EdgeId> incident_edges(VertexId c) const {
    return {incidence_[c].data(), incidence_[c].size()};
  }

  /// Absorb active cluster v into active cluster u (u != v).  One level.
  void contract(VertexId u, VertexId v);

  struct Uncontracted {
    VertexId u = kInvalidVertex;
    VertexId v = kInvalidVertex;
  };

  /// Undo the most recent contraction.  Nets on which v reappears as a
  /// distinct pin next to u (the nets the pair shared) are appended to
  /// `reactivated` when non-null — the caller's partition pin counts
  /// gain one pin on v's side for exactly those nets.
  Uncontracted uncontract(std::vector<EdgeId>* reactivated);

  /// fine vertex -> current active cluster id (chases the absorption
  /// chain with memoization; O(n) total).
  void current_clusters(std::vector<VertexId>& out) const;

 private:
  struct PinOp {
    EdgeId e = 0;
    std::uint32_t pos = 0;
    /// true: v swap-removed from the active prefix (net shared with u);
    /// false: the slot at `pos` was rewritten v -> u.
    bool removed = false;
  };
  struct Memento {
    VertexId u = 0;
    VertexId v = 0;
    std::uint32_t u_incidence_prev = 0;
    std::uint32_t ops_begin = 0;
  };

  const Hypergraph* h_ = nullptr;
  std::vector<VertexId> pin_data_;
  std::vector<std::size_t> pin_begin_;
  std::vector<std::uint32_t> pin_size_;
  std::vector<std::vector<EdgeId>> incidence_;
  std::vector<Weight> weight_;
  std::vector<Weight> wdeg_;
  std::vector<std::uint8_t> active_;
  std::vector<VertexId> absorbed_into_;
  std::vector<PinOp> ops_;
  std::vector<Memento> mementos_;
  std::size_t num_active_ = 0;
  Weight max_wdeg_ = 0;
};

}  // namespace vlsipart
