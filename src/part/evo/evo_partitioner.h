// Memetic (evolutionary multilevel) bipartitioner, following the
// recipe of KaHyPar-E (arXiv 1710.01968) scaled to this testbed: keep a
// small population of full solutions, produce offspring by RECOMBINING
// two parents through a V-cycle whose restricted coarsening respects the
// agreement classes of both (guide[v] = 2*p1[v] + p2[v], riding
// CoarsenConfig::respect_parts), diversify with MUTATION as a perturbed
// V-cycle, and replace with strict elitism (parents and offspring ranked
// together, best `population` survive).
//
// Determinism at any thread count is the headline property and is
// enforced by ctest (evo_test.cpp):
//   * every stochastic decision of generation g's offspring j draws from
//     rng.fork(population + g*offspring + j) — a child stream fixed
//     before the parallel section starts, independent of scheduling;
//   * parent selection ranks a SNAPSHOT of the population by the total
//     order (feasible-first, cut, imbalance, id) — ids break every tie,
//     so the ranking never depends on sort stability or memory layout;
//   * each worker owns a private MlPartitioner clone, and those engines
//     carry only scratch + work counters across runs (no solution
//     state), so WHICH worker serves an offspring cannot change the
//     offspring.  Only the work-counter summation order varies with the
//     schedule, and integer sums commute.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/util/thread_pool.h"

namespace vlsipart {

struct EvoConfig {
  /// Individuals kept between generations (each seeded by one full ML
  /// start before the first generation).
  std::size_t population = 6;
  /// Generations of offspring + elitist replacement after seeding.
  std::size_t generations = 8;
  /// Offspring produced per generation.
  std::size_t offspring = 4;
  /// Every mutation_period-th offspring is a mutation instead of a
  /// recombination (0 = recombination only).
  std::size_t mutation_period = 4;
  /// Free vertices flipped (uniformly, with replacement) before the
  /// mutation V-cycle.
  std::size_t mutation_size = 8;
  /// Worker threads for seeding and per-generation offspring.  The
  /// result is bit-identical for every value (see header comment).
  std::size_t evo_threads = 1;
  /// Multilevel engine used for seeding and for every V-cycle.
  MlConfig ml;
};

class EvoPartitioner final : public Bipartitioner {
 public:
  explicit EvoPartitioner(EvoConfig config, std::string name = {});

  std::string name() const override { return name_; }
  Weight run(const PartitionProblem& problem, Rng& rng,
             std::vector<PartId>& parts) override;
  /// Engines and pool are reusable scratch; a clone is a fresh instance
  /// of the same configuration (enables parallel multistart on top).
  std::unique_ptr<Bipartitioner> clone() const override;
  /// Sum over all per-worker ML engines.
  UpdateWork update_work() const override;

  const EvoConfig& config() const { return config_; }

 private:
  struct Individual {
    std::vector<PartId> parts;
    Weight cut = 0;
    /// Total balance violation (0 when feasible); ranks infeasible
    /// individuals behind every feasible one.
    Weight excess = 0;
    /// Creation ticket: seeds get 0..population-1, offspring continue
    /// the count in spec order.  Final tie-breaker of the rank order.
    std::uint64_t id = 0;
  };

  /// The total rank order: feasible before infeasible, then lower cut,
  /// lower excess, lower id.
  static bool rank_less(const Individual& a, const Individual& b);

  /// Private engine of worker slot w (created on first use).
  MlPartitioner* engine(std::size_t worker);
  ThreadPool* acquire_pool();
  void evaluate(const PartitionProblem& problem, Individual& ind) const;

  EvoConfig config_;
  std::string name_;
  std::vector<std::unique_ptr<MlPartitioner>> engines_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace vlsipart
