#include "src/part/evo/evo_partitioner.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"

namespace vlsipart {

EvoPartitioner::EvoPartitioner(EvoConfig config, std::string name)
    : config_(config), name_(std::move(name)) {
  if (name_.empty()) name_ = "evo";
}

std::unique_ptr<Bipartitioner> EvoPartitioner::clone() const {
  return std::make_unique<EvoPartitioner>(config_, name_);
}

UpdateWork EvoPartitioner::update_work() const {
  UpdateWork total;
  for (const auto& e : engines_) {
    if (e != nullptr) total.absorb(e->update_work());
  }
  return total;
}

MlPartitioner* EvoPartitioner::engine(std::size_t worker) {
  if (worker >= engines_.size()) engines_.resize(worker + 1);
  if (engines_[worker] == nullptr) {
    engines_[worker] = std::make_unique<MlPartitioner>(config_.ml);
  }
  return engines_[worker].get();
}

ThreadPool* EvoPartitioner::acquire_pool() {
  if (config_.evo_threads <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(config_.evo_threads);
  return pool_.get();
}

bool EvoPartitioner::rank_less(const Individual& a, const Individual& b) {
  const bool a_feasible = a.excess == 0;
  const bool b_feasible = b.excess == 0;
  if (a_feasible != b_feasible) return a_feasible;
  if (a.cut != b.cut) return a.cut < b.cut;
  if (a.excess != b.excess) return a.excess < b.excess;
  return a.id < b.id;
}

void EvoPartitioner::evaluate(const PartitionProblem& problem,
                              Individual& ind) const {
  const Hypergraph& h = *problem.graph;
  ind.cut = compute_cut(h, ind.parts);
  Weight w[2] = {0, 0};
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    w[ind.parts[v] & 1] += h.vertex_weight(static_cast<VertexId>(v));
  }
  const BalanceConstraint& b = problem.balance;
  Weight excess = 0;
  for (int p = 0; p < 2; ++p) {
    if (w[p] > b.max_part()) excess += w[p] - b.max_part();
    if (w[p] < b.min_part()) excess += b.min_part() - w[p];
  }
  ind.excess = excess;
}

Weight EvoPartitioner::run(const PartitionProblem& problem, Rng& rng,
                           std::vector<PartId>& parts) {
  const Hypergraph& h = *problem.graph;
  const std::size_t n = h.num_vertices();
  const std::size_t pop_size = std::max<std::size_t>(1, config_.population);
  const std::size_t num_offspring = std::max<std::size_t>(1, config_.offspring);
  const std::vector<PartId>& fixed = problem.fixed;

  // Run body(i) for i in [0, count) on the evo workers (or inline when
  // serial).  Each body draws only from its own fork stream and a
  // per-worker engine, so the schedule never reaches the result.
  ThreadPool* pool = acquire_pool();
  const auto for_each = [&](std::size_t count,
                            const std::function<void(std::size_t worker,
                                                     std::size_t i)>& body) {
    if (pool != nullptr) {
      pool->parallel_for_dynamic(count, body);
    } else {
      for (std::size_t i = 0; i < count; ++i) body(0, i);
    }
  };
  // Engines must exist before the parallel section: engine() resizes the
  // vector, which two workers may not do concurrently.
  for (std::size_t w = 0; w < (pool != nullptr ? pool->num_threads() : 1); ++w) {
    engine(w);
  }

  // --- Seeding: population independent ML starts, streams 0..P-1. ---
  std::vector<Individual> population(pop_size);
  for_each(pop_size, [&](std::size_t worker, std::size_t i) {
    Rng child = rng.fork(i);
    engine(worker)->run(problem, child, population[i].parts);
    population[i].id = i;
    evaluate(problem, population[i]);
  });

  struct OffspringSpec {
    bool mutate = false;
    std::size_t parent1 = 0;  // the better-ranked parent; offspring start
    std::size_t parent2 = 0;  // second parent of a recombination
    std::uint64_t stream = 0;
    std::uint64_t id = 0;
  };
  std::uint64_t next_id = pop_size;
  std::vector<std::size_t> order(pop_size);
  std::vector<OffspringSpec> specs(num_offspring);
  std::vector<Individual> offspring(num_offspring);

  for (std::size_t g = 0; g < config_.generations; ++g) {
    // Rank snapshot of the current population (total order — the sort is
    // deterministic regardless of algorithm stability).
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rank_less(population[a], population[b]);
    });

    // Offspring specs are fixed BEFORE the parallel section: stream ids
    // continue the fork counter, parents walk the rank order so the best
    // individuals recombine most often but everyone participates.
    for (std::size_t j = 0; j < num_offspring; ++j) {
      OffspringSpec& s = specs[j];
      s.mutate = config_.mutation_period > 0 &&
                 (j + 1) % config_.mutation_period == 0;
      s.parent1 = order[j % pop_size];
      s.parent2 = order[(j + 1) % pop_size];
      s.stream = pop_size + g * num_offspring + j;
      s.id = next_id++;
    }

    for_each(num_offspring, [&](std::size_t worker, std::size_t j) {
      const OffspringSpec& s = specs[j];
      Individual& kid = offspring[j];
      Rng child = rng.fork(s.stream);
      kid.parts = population[s.parent1].parts;
      if (s.mutate) {
        // Perturb, then let a V-cycle repair: the engine only accepts
        // the V-cycle result when feasible and not worse than the
        // PERTURBED solution, so mutants can be worse than their parent
        // (that is the point — elitist replacement discards failures).
        for (std::size_t t = 0; t < config_.mutation_size; ++t) {
          const VertexId v = static_cast<VertexId>(child.below(n));
          if (fixed.empty() || fixed[v] == kNoPart) kid.parts[v] ^= 1;
        }
        engine(worker)->vcycle(problem, child, kid.parts);
      } else {
        // Recombination: coarsening may only cluster vertices on which
        // BOTH parents agree, so the V-cycle explores the subspace
        // spanned by the parents.  The guide refines kid.parts (= the
        // first parent) by construction.
        const std::vector<PartId>& p1 = population[s.parent1].parts;
        const std::vector<PartId>& p2 = population[s.parent2].parts;
        std::vector<PartId> guide(n);
        for (std::size_t v = 0; v < n; ++v) {
          guide[v] = static_cast<PartId>(2 * (p1[v] & 1) + (p2[v] & 1));
        }
        engine(worker)->vcycle_guided(problem, child, kid.parts, guide);
      }
      kid.id = s.id;
      evaluate(problem, kid);
    });

    // Elitist replacement: parents and offspring compete as one pool.
    for (Individual& kid : offspring) population.push_back(std::move(kid));
    std::sort(population.begin(), population.end(), rank_less);
    population.resize(pop_size);
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < population.size(); ++i) {
    if (rank_less(population[i], population[best])) best = i;
  }
  parts = std::move(population[best].parts);
  return population[best].cut;
}

}  // namespace vlsipart
