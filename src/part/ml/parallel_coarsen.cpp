#include "src/part/ml/parallel_coarsen.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"
#include "src/util/shard.h"

namespace vlsipart {
namespace {

// Same derivation as the serial coarsener (coarsen.cpp): never below the
// largest single vertex, roughly total/coarsen_to otherwise.
Weight parallel_max_cluster_weight(const Hypergraph& h,
                                   const CoarsenConfig& config) {
  if (config.max_cluster_weight > 0) return config.max_cluster_weight;
  const Weight cap = std::max<Weight>(
      1, h.total_vertex_weight() /
             static_cast<Weight>(std::max<std::size_t>(config.coarsen_to, 32)));
  return std::max(cap, h.max_vertex_weight());
}

}  // namespace

CoarsenLevel parallel_coarsen_once(const Hypergraph& h,
                                   const CoarsenConfig& config,
                                   const std::vector<PartId>& fixed,
                                   const std::vector<PartId>& parts,
                                   ThreadPool* pool,
                                   ContractionMemory* memory) {
  const std::size_t n = h.num_vertices();
  const Weight max_cw = parallel_max_cluster_weight(h, config);
  const std::size_t shards =
      pool != nullptr ? std::max<std::size_t>(1, pool->num_threads()) : 1;

  auto is_fixed = [&fixed](VertexId v) {
    return !fixed.empty() && fixed[v] != kNoPart;
  };
  const bool check_parts = config.respect_parts && !parts.empty();

  // Phase 1: every vertex independently rates its neighbors against the
  // immutable fine graph and records its preferred partner.  Per-shard
  // scatter-accumulate scratch; writes to pref[] are confined to the
  // shard's own contiguous range.
  std::vector<VertexId> pref(n, kInvalidVertex);
  std::vector<std::vector<double>> shard_rating(shards);
  std::vector<std::vector<VertexId>> shard_touched(shards);

  auto rate_shard = [&](std::size_t shard) {
    const ShardRange range = shard_range(n, shards, shard);
    std::vector<double>& rating = shard_rating[shard];
    std::vector<VertexId>& touched = shard_touched[shard];
    rating.assign(n, 0.0);
    touched.clear();
    for (std::size_t vi = range.begin; vi < range.end; ++vi) {
      const VertexId v = static_cast<VertexId>(vi);
      if (is_fixed(v)) continue;  // fixed vertices stay singletons
      touched.clear();
      for (const EdgeId e : h.incident_edges(v)) {
        const std::size_t size = h.edge_size(e);
        if (size < 2 || size > config.max_rated_net_size) continue;
        const double score = static_cast<double>(h.edge_weight(e)) /
                             static_cast<double>(size - 1);
        for (const VertexId u : h.pins(e)) {
          if (u == v || is_fixed(u)) continue;
          if (check_parts && parts[u] != parts[v]) continue;
          if (h.vertex_weight(u) + h.vertex_weight(v) > max_cw) continue;
          if (rating[u] == 0.0) touched.push_back(u);
          rating[u] += score;
        }
      }
      VertexId best = kInvalidVertex;
      double best_rating = 0.0;
      for (const VertexId u : touched) {
        // Highest rating wins; ties go to the lowest partner id.  The
        // accumulation order over v's nets is fixed by the CSR layout,
        // so the scores — and hence the choice — never depend on the
        // shard count.
        if (rating[u] > best_rating ||
            (rating[u] == best_rating && best != kInvalidVertex && u < best)) {
          best = u;
          best_rating = rating[u];
        }
      }
      for (const VertexId u : touched) rating[u] = 0.0;
      pref[vi] = best;
    }
  };
  if (pool != nullptr && shards > 1) {
    pool->parallel_for_dynamic(shards, rate_shard);
  } else {
    for (std::size_t s = 0; s < shards; ++s) rate_shard(s);
  }

  // Phase 2: order-independent resolution of preferences into clusters.
  std::vector<VertexId> cluster_of(n);
  std::iota(cluster_of.begin(), cluster_of.end(), 0);

  if (config.scheme == CoarsenScheme::kHeavyEdgeMatching) {
    // Mutual pairs only.  pref is a function of the vertex, so the pair
    // set {v, pref[v]} with pref[pref[v]] == v is disjoint by
    // construction — there is no resolution order to depend on.
    for (std::size_t v = 0; v < n; ++v) {
      const VertexId u = pref[v];
      if (u == kInvalidVertex || u >= static_cast<VertexId>(v)) continue;
      if (pref[u] == static_cast<VertexId>(v)) {
        cluster_of[v] = u;  // lowest id leads
      }
    }
  } else {
    // First-choice: connected components of the pointer graph
    // v -> pref[v], leader = lowest id.  Union-find with min-id roots;
    // the resulting partition is a property of the edge set, not of the
    // union order.
    auto find = [&cluster_of](VertexId x) {
      while (cluster_of[x] != x) {
        cluster_of[x] = cluster_of[cluster_of[x]];
        x = cluster_of[x];
      }
      return x;
    };
    for (std::size_t v = 0; v < n; ++v) {
      if (pref[v] == kInvalidVertex) continue;
      const VertexId a = find(static_cast<VertexId>(v));
      const VertexId b = find(pref[v]);
      if (a == b) continue;
      if (a < b) {
        cluster_of[b] = a;
      } else {
        cluster_of[a] = b;
      }
    }
    // Components can chain past the weight cap (a -> b and c -> b merge
    // three vertices even though only the pairs were checked).  Trim by
    // an ascending-id sweep: the root is the component's minimum id, so
    // it is seen first and seeds the running sub-cluster; later members
    // that no longer fit start a fresh sub-cluster at their own id.
    // Roots are snapshotted first because the sweep repurposes
    // cluster_of[] as its output.
    std::vector<VertexId> root_of(n);
    for (std::size_t v = 0; v < n; ++v) {
      root_of[v] = find(static_cast<VertexId>(v));
    }
    std::vector<VertexId> sub_leader(n, kInvalidVertex);
    std::vector<Weight> sub_weight(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const VertexId root = root_of[v];
      const Weight wv = h.vertex_weight(static_cast<VertexId>(v));
      if (sub_leader[root] != kInvalidVertex &&
          sub_weight[root] + wv <= max_cw) {
        cluster_of[v] = sub_leader[root];
        sub_weight[root] += wv;
      } else {
        cluster_of[v] = static_cast<VertexId>(v);
        sub_leader[root] = static_cast<VertexId>(v);
        sub_weight[root] = wv;
      }
    }
  }

  // Flatten matching-mode pointers (depth <= 1 already; harmless) and
  // hand the flat cluster ids to the allocation-free contraction.
  for (std::size_t v = 0; v < n; ++v) {
    VertexId c = cluster_of[v];
    while (cluster_of[c] != c) c = cluster_of[c];
    cluster_of[v] = c;
  }

  ContractionResult contraction = contract(h, cluster_of, memory);
  CoarsenLevel level;
  level.coarse = std::move(contraction.coarse);
  level.fine_to_coarse = std::move(contraction.fine_to_coarse);
  return level;
}

std::vector<CoarsenLevel> parallel_build_hierarchy(
    const Hypergraph& h, const CoarsenConfig& config,
    const std::vector<PartId>& fixed, const std::vector<PartId>& parts,
    ThreadPool* pool, ContractionMemory* memory) {
  std::vector<CoarsenLevel> levels;
  const Hypergraph* current = &h;
  std::vector<PartId> current_fixed = fixed;
  std::vector<PartId> current_parts = parts;

  while (current->num_vertices() > config.coarsen_to) {
    CoarsenLevel level = parallel_coarsen_once(*current, config, current_fixed,
                                               current_parts, pool, memory);
    const double reduction =
        static_cast<double>(level.coarse.num_vertices()) /
        static_cast<double>(current->num_vertices());
    if (reduction > config.min_reduction) break;  // stalled
    if (!current_fixed.empty()) {
      current_fixed = project_fixed(current_fixed, level.fine_to_coarse,
                                    level.coarse.num_vertices());
    }
    if (config.respect_parts && !current_parts.empty()) {
      std::vector<PartId> coarse_parts(level.coarse.num_vertices(), kNoPart);
      for (std::size_t v = 0; v < current_parts.size(); ++v) {
        coarse_parts[level.fine_to_coarse[v]] = current_parts[v];
      }
      current_parts = std::move(coarse_parts);
    }
    levels.push_back(std::move(level));
    current = &levels.back().coarse;
  }
  return levels;
}

}  // namespace vlsipart
