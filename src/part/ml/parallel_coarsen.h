// Deterministic parallel heavy-edge coarsening.
//
// The serial coarsener (coarsen.h) grows clusters sequentially in a
// random visit order — each decision sees the clusters its predecessors
// formed, so it cannot be parallelized without changing results.  This
// coarsener restructures the level into two phases with a barrier:
//
//   1. RATE (parallel) — every vertex v independently computes its
//      preferred partner pref[v]: the neighbor with the highest
//      heavy-edge rating sum(w(e) / (|e|-1)) over shared nets no larger
//      than max_rated_net_size, ties to the lowest id, restricted to
//      partners whose pair weight fits max_cluster_weight (and, under
//      respect_parts, the same part).  Preferences read only the
//      immutable fine graph, so vertex-range shards race on nothing and
//      pref[] is a pure function of the graph — independent of the
//      shard count.
//   2. RESOLVE (serial, order-independent) — preferences become
//      clusters without any visit-order dependence:
//        * kHeavyEdgeMatching: exactly the mutual pairs
//          (pref[v] == u && pref[u] == v) merge, lowest id leading.
//          pref is a function, so mutual pairs are disjoint — no
//          resolution order exists to matter.
//        * kFirstChoice: the pointer graph v -> pref[v] is split into
//          connected components by a min-id union pass (the component
//          partition is order-independent; the leader is the component's
//          lowest id), then components are trimmed to the weight cap by
//          an ascending-id greedy sweep — the lone sequential step, and
//          its order is fixed by vertex ids, not threads.
//
// Both phases are deterministic at any thread count, which is what lets
// the ML pipeline use this level builder under the same bit-identity
// tests as the parallel refiner.  Note the result intentionally differs
// from the serial coarsener's (no random visit order, pairwise rather
// than incremental ratings): coarsen_threads=1 in MlConfig selects the
// serial path, > 1 selects this one.
#pragma once

#include "src/part/ml/coarsen.h"
#include "src/util/thread_pool.h"

namespace vlsipart {

/// One parallel clustering + contraction step; the deterministic
/// counterpart of coarsen_once (no Rng: nothing is randomized).  `pool`
/// may be null (runs inline, same result).
CoarsenLevel parallel_coarsen_once(const Hypergraph& h,
                                   const CoarsenConfig& config,
                                   const std::vector<PartId>& fixed,
                                   const std::vector<PartId>& parts,
                                   ThreadPool* pool,
                                   ContractionMemory* memory = nullptr);

/// Full hierarchy via parallel_coarsen_once; same stall/projection rules
/// as build_hierarchy.
std::vector<CoarsenLevel> parallel_build_hierarchy(
    const Hypergraph& h, const CoarsenConfig& config,
    const std::vector<PartId>& fixed, const std::vector<PartId>& parts,
    ThreadPool* pool, ContractionMemory* memory = nullptr);

}  // namespace vlsipart
