// Multilevel coarsening: heavy-edge first-choice clustering.
//
// The "ML" engines of Table 1 and the hMetis-1.5 stand-in of Tables 4-5
// build a hierarchy of successively coarser hypergraphs [25][26].
// Vertices are visited in random order; each joins the neighboring
// cluster with the highest heavy-edge rating
//     rating(u, C) = sum over shared nets e of  w(e) / (|e| - 1)
// subject to a maximum cluster weight.  Fixed vertices are never
// clustered (they remain singletons so fixed constraints project
// losslessly through every level).
#pragma once

#include <vector>

#include "src/hypergraph/contraction.h"
#include "src/hypergraph/hypergraph.h"
#include "src/util/rng.h"

namespace vlsipart {

/// Clustering discipline for one coarsening level [25][26]:
///   kFirstChoice — a visited vertex may join an existing cluster of any
///     size (subject to the weight cap); aggressive, fewer levels.
///   kHeavyEdgeMatching — clusters are vertex *pairs* only (classic
///     matching); conservative, more levels.
enum class CoarsenScheme : std::uint8_t {
  kFirstChoice = 0,
  kHeavyEdgeMatching = 1,
};

struct CoarsenConfig {
  /// Matching is the default: on this testbed it consistently beats
  /// first-choice on cut (see bench_clustering) at ~2x the coarsening
  /// time — and Sec. 2.2 demands the strongest available testbed.
  CoarsenScheme scheme = CoarsenScheme::kHeavyEdgeMatching;
  /// Stop when the coarsest level has at most this many vertices.
  std::size_t coarsen_to = 120;
  /// Abort coarsening when a level shrinks by less than this factor.
  double min_reduction = 0.95;
  /// Clusters never exceed this weight (0 = derive from total weight).
  Weight max_cluster_weight = 0;
  /// Nets larger than this do not contribute to ratings (huge clock-
  /// class nets carry no clustering signal and are expensive to scan).
  std::size_t max_rated_net_size = 64;
  /// Worker threads for coarsening.  1 = the serial random-order
  /// coarsener below (bit-identical to historical behavior); > 1 selects
  /// the two-phase rate/resolve coarsener (parallel_coarsen.h), whose
  /// hierarchy is identical for every thread count.
  std::size_t coarsen_threads = 1;
  /// If true, only merge vertices currently in the same part — the
  /// restricted coarsening used by V-cycling [25][26].  Not a CLI knob:
  /// vcycle() sets it internally when re-coarsening around an existing
  /// solution, and flipping it from a flag would silently build
  /// hierarchies inconsistent with that solution.
  // det-lint: allow(knob-completeness)
  bool respect_parts = false;
};

struct CoarsenLevel {
  Hypergraph coarse;
  std::vector<VertexId> fine_to_coarse;
};

/// One clustering + contraction step.  `fixed` (may be empty) marks
/// vertices that must stay singletons; `parts` is consulted only when
/// config.respect_parts is set.  `memory` (optional) supplies reusable
/// contraction scratch so repeated coarsening (V-cycles, multistart ML)
/// stays allocation-free.
CoarsenLevel coarsen_once(const Hypergraph& h, const CoarsenConfig& config,
                          const std::vector<PartId>& fixed,
                          const std::vector<PartId>& parts, Rng& rng,
                          ContractionMemory* memory = nullptr);

/// Full hierarchy: repeatedly coarsen until coarsen_to or stall.
/// levels[0] maps the input graph to levels[0].coarse, etc.
std::vector<CoarsenLevel> build_hierarchy(const Hypergraph& h,
                                          const CoarsenConfig& config,
                                          const std::vector<PartId>& fixed,
                                          const std::vector<PartId>& parts,
                                          Rng& rng,
                                          ContractionMemory* memory = nullptr);

/// Push fixed-vertex constraints one level down: a coarse vertex is fixed
/// to p iff it contains a fine vertex fixed to p (singletons by
/// construction, so no conflicts are possible).
std::vector<PartId> project_fixed(const std::vector<PartId>& fine_fixed,
                                  const std::vector<VertexId>& fine_to_coarse,
                                  std::size_t num_coarse);

}  // namespace vlsipart
