#include "src/part/ml/ml_partitioner.h"

#include <limits>

#include "src/part/core/parallel_refine.h"
#include "src/part/ml/parallel_coarsen.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace vlsipart {

MlPartitioner::MlPartitioner(MlConfig config, std::string name)
    : config_(config), name_(std::move(name)) {
  if (name_.empty()) {
    name_ = std::string("ml-") + (config_.refine.clip ? "clip" : "fm");
  }
}

std::unique_ptr<Bipartitioner> MlPartitioner::clone() const {
  return std::make_unique<MlPartitioner>(config_, name_);
}

ThreadPool* MlPartitioner::acquire_pool() {
  const std::size_t threads = std::max(config_.refine.refine_threads,
                                       config_.coarsen.coarsen_threads);
  if (threads <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads);
  return pool_.get();
}

Weight MlPartitioner::run_internal(const PartitionProblem& problem, Rng& rng,
                                   std::vector<PartId>& parts,
                                   bool restricted,
                                   const std::vector<PartId>* cluster_guide) {
  const Hypergraph& fine = *problem.graph;

  CoarsenConfig coarsen_config = config_.coarsen;
  coarsen_config.respect_parts = restricted;
  const std::vector<PartId> guide =
      restricted ? (cluster_guide != nullptr ? *cluster_guide : parts)
                 : std::vector<PartId>{};
  std::vector<CoarsenLevel> levels =
      coarsen_config.coarsen_threads > 1
          ? parallel_build_hierarchy(fine, coarsen_config, problem.fixed,
                                     guide, acquire_pool(),
                                     &contraction_memory_)
          : build_hierarchy(fine, coarsen_config, problem.fixed, guide, rng,
                            &contraction_memory_);

  // Under runtime audits, every contracted hypergraph gets the full
  // structural validation (offset monotonicity, incidence-direction
  // consistency, cached weight totals) before anything refines on it.
  const AuditConfig audit = AuditConfig::resolve(config_.refine.audit);
  if (audit.enabled()) {
    for (const CoarsenLevel& level : levels) level.coarse.validate();
  }

  // Fixed constraints at each level.
  std::vector<std::vector<PartId>> fixed_at_level;
  fixed_at_level.reserve(levels.size() + 1);
  fixed_at_level.push_back(problem.fixed);
  for (const CoarsenLevel& level : levels) {
    const auto& prev = fixed_at_level.back();
    if (prev.empty()) {
      fixed_at_level.emplace_back();
    } else {
      fixed_at_level.push_back(project_fixed(prev, level.fine_to_coarse,
                                             level.coarse.num_vertices()));
    }
  }

  const Hypergraph* coarsest =
      levels.empty() ? &fine : &levels.back().coarse;

  // Level refinement dispatch: serial FM at refine_threads=1 (the
  // historical, golden-digest-pinned path), the synchronous-round
  // parallel engine otherwise.
  const bool par_refine = config_.refine.refine_threads > 1;
  auto refine_in_place = [&](const PartitionProblem& p, PartitionState& s) {
    if (par_refine) {
      ParallelFmRefiner refiner(p, config_.refine, acquire_pool());
      work_.absorb(refiner.refine(s, rng).update_work());
    } else {
      FmRefiner refiner(p, config_.refine);
      work_.absorb(refiner.refine(s, rng).update_work());
    }
  };

  PartitionProblem coarse_problem;
  coarse_problem.graph = coarsest;
  coarse_problem.balance = problem.balance;
  coarse_problem.fixed = fixed_at_level.back();

  // Coarsest-level solution.
  std::vector<PartId> coarse_parts;
  if (restricted) {
    // Project the current solution down the (guide-respecting)
    // hierarchy; clusters are guide-homogeneous and the guide refines
    // the solution, so the projected cut equals the fine cut by
    // construction.
    coarse_parts = parts;
    for (const CoarsenLevel& level : levels) {
      std::vector<PartId> next(level.coarse.num_vertices(), kNoPart);
      for (std::size_t v = 0; v < coarse_parts.size(); ++v) {
        next[level.fine_to_coarse[v]] = coarse_parts[v];
      }
      coarse_parts = std::move(next);
    }
    PartitionState state(*coarsest);
    state.assign(coarse_parts);
    refine_in_place(coarse_problem, state);
    coarse_parts = state.parts();
  } else {
    Weight best = std::numeric_limits<Weight>::max();
    // The coarsest-level refiner is hoisted out of the tries loop (one
    // construction, as before) for either engine.
    std::unique_ptr<FmRefiner> serial_refiner;
    std::unique_ptr<ParallelFmRefiner> parallel_refiner;
    if (par_refine) {
      parallel_refiner = std::make_unique<ParallelFmRefiner>(
          coarse_problem, config_.refine, acquire_pool());
    } else {
      serial_refiner =
          std::make_unique<FmRefiner>(coarse_problem, config_.refine);
    }
    for (std::size_t t = 0; t < std::max<std::size_t>(1, config_.initial_tries);
         ++t) {
      std::vector<PartId> trial =
          make_initial(coarse_problem, config_.initial_scheme, t, rng);
      PartitionState state(*coarsest);
      state.assign(trial);
      if (par_refine) {
        work_.absorb(parallel_refiner->refine(state, rng).update_work());
      } else {
        work_.absorb(serial_refiner->refine(state, rng).update_work());
      }
      const bool feasible =
          check_solution(coarse_problem, state.parts()).empty();
      const Weight cut = state.cut();
      if (coarse_parts.empty() || (feasible && cut < best)) {
        if (feasible || coarse_parts.empty()) {
          best = feasible ? cut : best;
          coarse_parts = state.parts();
        }
      }
    }
  }

  // Uncoarsen + refine.
  Weight audit_prev_cut =
      audit.enabled() ? compute_cut(*coarsest, coarse_parts) : 0;
  for (std::size_t i = levels.size(); i-- > 0;) {
    const Hypergraph* level_graph = (i == 0) ? &fine : &levels[i - 1].coarse;
    coarse_parts = project_partition(levels[i].fine_to_coarse, coarse_parts);

    PartitionProblem level_problem;
    level_problem.graph = level_graph;
    level_problem.balance = problem.balance;
    level_problem.fixed = fixed_at_level[i];

    PartitionState state(*level_graph);
    state.assign(coarse_parts);
    if (audit.enabled()) {
      // Contraction drops only uncuttable single-cluster nets and merges
      // parallel nets weight-preservingly, so projecting a coarse
      // solution one level down must reproduce its cut exactly.
      VP_CHECK(state.cut() == audit_prev_cut,
               "audit: projection to level " << i << " changed the cut from "
                                             << audit_prev_cut << " to "
                                             << state.cut());
    }
    refine_in_place(level_problem, state);
    coarse_parts = state.parts();
    audit_prev_cut = state.cut();
  }

  parts = std::move(coarse_parts);
  if (levels.empty() && !restricted) {
    // Graph was already small: coarse_parts solved on `fine` directly.
    return compute_cut(fine, parts);
  }
  return compute_cut(fine, parts);
}

Weight MlPartitioner::run(const PartitionProblem& problem, Rng& rng,
                          std::vector<PartId>& parts) {
  Weight cut = run_internal(problem, rng, parts, /*restricted=*/false);
  for (std::size_t c = 0; c < config_.vcycles; ++c) {
    const Weight improved = vcycle(problem, rng, parts);
    if (improved >= cut) break;
    cut = improved;
  }
  return cut;
}

Weight MlPartitioner::vcycle(const PartitionProblem& problem, Rng& rng,
                             std::vector<PartId>& parts) {
  VP_CHECK(parts.size() == problem.graph->num_vertices(),
           "v-cycle needs a full assignment");
  std::vector<PartId> candidate = parts;
  const Weight before = compute_cut(*problem.graph, parts);
  const Weight after =
      run_internal(problem, rng, candidate, /*restricted=*/true);
  if (after <= before && check_solution(problem, candidate).empty()) {
    parts = std::move(candidate);
    return after;
  }
  return before;
}

Weight MlPartitioner::vcycle_guided(const PartitionProblem& problem, Rng& rng,
                                    std::vector<PartId>& parts,
                                    const std::vector<PartId>& guide) {
  VP_CHECK(parts.size() == problem.graph->num_vertices() &&
               guide.size() == parts.size(),
           "guided v-cycle needs a full assignment and guide");
  // The guide must refine the solution: one part per guide label.  With
  // the memetic agreement encoding guide = 2*p1 + p2 and parts = p1 this
  // holds by construction; the check keeps other callers honest (a
  // violating guide would make the downward projection pick an arbitrary
  // cluster member's part).
  {
    PartId label_part[256];
    std::fill(std::begin(label_part), std::end(label_part), kNoPart);
    for (std::size_t v = 0; v < parts.size(); ++v) {
      PartId& p = label_part[guide[v]];
      VP_CHECK(p == kNoPart || p == parts[v],
               "guided v-cycle: guide label " << int(guide[v])
                 << " spans both parts — guide must refine parts");
      p = parts[v];
    }
  }
  std::vector<PartId> candidate = parts;
  const Weight before = compute_cut(*problem.graph, parts);
  const Weight after =
      run_internal(problem, rng, candidate, /*restricted=*/true, &guide);
  if (after <= before && check_solution(problem, candidate).empty()) {
    parts = std::move(candidate);
    return after;
  }
  return before;
}

MultistartResult run_hmetis_like(const PartitionProblem& problem,
                                 MlPartitioner& partitioner,
                                 std::size_t num_starts,
                                 std::size_t vcycles_on_best,
                                 std::uint64_t seed,
                                 std::size_t num_threads) {
  MultistartResult result =
      run_multistart(problem, partitioner, num_starts, seed, num_threads);
  if (result.best_parts.empty() || vcycles_on_best == 0) return result;

  // "hMetis-1.5 will V-cycle the best result among these starts": apply
  // the trailing V-cycles to the winner, counting their CPU.
  Rng rng(seed ^ 0x5ec5eedc0ffeeULL);
  CpuTimer timer;
  Weight cut = result.best_cut;
  for (std::size_t c = 0; c < vcycles_on_best; ++c) {
    const Weight improved =
        partitioner.vcycle(problem, rng, result.best_parts);
    if (improved >= cut) break;
    cut = improved;
  }
  result.best_cut = cut;
  result.total_cpu_seconds += timer.elapsed();
  return result;
}

}  // namespace vlsipart
