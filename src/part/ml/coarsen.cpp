#include "src/part/ml/coarsen.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"

namespace vlsipart {
namespace {

Weight derived_max_cluster_weight(const Hypergraph& h,
                                  const CoarsenConfig& config) {
  if (config.max_cluster_weight > 0) return config.max_cluster_weight;
  // Keep clusters small enough that (a) the coarsest graph still has
  // enough movable mass for FM to rebalance and (b) coarse vertices stay
  // well below the balance window a typical (2%) run uses.  Never below
  // the largest single vertex — macros are indivisible anyway.
  const Weight cap = std::max<Weight>(
      1, h.total_vertex_weight() /
             static_cast<Weight>(std::max<std::size_t>(config.coarsen_to, 32)));
  return std::max(cap, h.max_vertex_weight());
}

}  // namespace

CoarsenLevel coarsen_once(const Hypergraph& h, const CoarsenConfig& config,
                          const std::vector<PartId>& fixed,
                          const std::vector<PartId>& parts, Rng& rng,
                          ContractionMemory* memory) {
  const std::size_t n = h.num_vertices();
  const Weight max_cw = derived_max_cluster_weight(h, config);

  // cluster_of[v] = representative vertex id of v's cluster.
  std::vector<VertexId> cluster_of(n);
  std::iota(cluster_of.begin(), cluster_of.end(), 0);
  std::vector<Weight> cluster_weight(n);
  for (std::size_t v = 0; v < n; ++v) {
    cluster_weight[v] = h.vertex_weight(static_cast<VertexId>(v));
  }

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  // Scatter-accumulate ratings against neighbor clusters.
  std::vector<double> rating(n, 0.0);
  std::vector<VertexId> touched;

  auto is_fixed = [&](VertexId v) {
    return !fixed.empty() && fixed[v] != kNoPart;
  };

  // Union-find representative lookup with path halving.  Ratings must be
  // keyed by the *current* representative — keying by stale cluster
  // pointers can create pointer cycles (a absorbed into b's old id while
  // b was absorbed into a), which would never terminate.
  auto find = [&](VertexId x) {
    while (cluster_of[x] != x) {
      cluster_of[x] = cluster_of[cluster_of[x]];
      x = cluster_of[x];
    }
    return x;
  };

  const bool matching_only =
      config.scheme == CoarsenScheme::kHeavyEdgeMatching;
  // In matching mode a representative that already absorbed (or was
  // absorbed) is saturated and cannot cluster again this level.
  std::vector<std::uint8_t> matched(n, 0);

  for (const VertexId u : order) {
    if (cluster_of[u] != u) continue;  // already absorbed
    if (is_fixed(u)) continue;         // fixed vertices stay singletons
    if (matching_only && matched[u]) continue;
    touched.clear();
    for (const EdgeId e : h.incident_edges(u)) {
      const std::size_t size = h.edge_size(e);
      if (size > config.max_rated_net_size) continue;
      const double score = static_cast<double>(h.edge_weight(e)) /
                           static_cast<double>(size - 1);
      for (const VertexId w : h.pins(e)) {
        const VertexId c = find(w);
        if (c == u) continue;
        if (is_fixed(c)) continue;
        if (matching_only && matched[c]) continue;
        if (config.respect_parts && !parts.empty() && parts[w] != parts[u]) {
          continue;
        }
        if (rating[c] == 0.0) touched.push_back(c);
        rating[c] += score;
      }
    }
    VertexId best = kInvalidVertex;
    double best_rating = 0.0;
    const Weight wu = cluster_weight[u];
    for (const VertexId c : touched) {
      if (cluster_weight[c] + wu <= max_cw &&
          (rating[c] > best_rating ||
           (rating[c] == best_rating && best != kInvalidVertex && c < best))) {
        best = c;
        best_rating = rating[c];
      }
    }
    for (const VertexId c : touched) rating[c] = 0.0;
    if (best == kInvalidVertex) continue;
    // Absorb u into best's cluster.
    cluster_of[u] = best;
    cluster_weight[best] += wu;
    if (matching_only) {
      matched[u] = 1;
      matched[best] = 1;
    }
  }

  // Final full compression so contract() sees flat cluster ids.
  for (std::size_t v = 0; v < n; ++v) {
    cluster_of[v] = find(static_cast<VertexId>(v));
  }

  ContractionResult contraction = contract(h, cluster_of, memory);
  CoarsenLevel level;
  level.coarse = std::move(contraction.coarse);
  level.fine_to_coarse = std::move(contraction.fine_to_coarse);
  return level;
}

std::vector<CoarsenLevel> build_hierarchy(const Hypergraph& h,
                                          const CoarsenConfig& config,
                                          const std::vector<PartId>& fixed,
                                          const std::vector<PartId>& parts,
                                          Rng& rng,
                                          ContractionMemory* memory) {
  std::vector<CoarsenLevel> levels;
  const Hypergraph* current = &h;
  std::vector<PartId> current_fixed = fixed;
  std::vector<PartId> current_parts = parts;

  while (current->num_vertices() > config.coarsen_to) {
    CoarsenLevel level = coarsen_once(*current, config, current_fixed,
                                      current_parts, rng, memory);
    const double reduction =
        static_cast<double>(level.coarse.num_vertices()) /
        static_cast<double>(current->num_vertices());
    if (reduction > config.min_reduction) break;  // stalled
    if (!current_fixed.empty()) {
      current_fixed = project_fixed(current_fixed, level.fine_to_coarse,
                                    level.coarse.num_vertices());
    }
    if (config.respect_parts && !current_parts.empty()) {
      // Clusters are part-homogeneous, so any member's part is the
      // cluster's part.
      std::vector<PartId> coarse_parts(level.coarse.num_vertices(), kNoPart);
      for (std::size_t v = 0; v < current_parts.size(); ++v) {
        coarse_parts[level.fine_to_coarse[v]] = current_parts[v];
      }
      current_parts = std::move(coarse_parts);
    }
    levels.push_back(std::move(level));
    current = &levels.back().coarse;
  }
  return levels;
}

std::vector<PartId> project_fixed(const std::vector<PartId>& fine_fixed,
                                  const std::vector<VertexId>& fine_to_coarse,
                                  std::size_t num_coarse) {
  std::vector<PartId> coarse_fixed(num_coarse, kNoPart);
  for (std::size_t v = 0; v < fine_fixed.size(); ++v) {
    if (fine_fixed[v] == kNoPart) continue;
    PartId& slot = coarse_fixed[fine_to_coarse[v]];
    VP_CHECK(slot == kNoPart || slot == fine_fixed[v],
             "fixed vertices of different parts merged");
    slot = fine_fixed[v];
  }
  return coarse_fixed;
}

}  // namespace vlsipart
