// Multilevel FM bipartitioner with V-cycling — the "ML LIFO FM" /
// "ML CLIP FM" engines of Table 1 and the hMetis-1.5-like engine
// evaluated in Tables 4-5 (see DESIGN.md for the substitution note).
//
// Pipeline per start:
//   1. coarsen:   heavy-edge first-choice clustering to ~coarsen_to
//                 vertices (coarsen.h);
//   2. initial:   several random feasible solutions of the coarsest
//                 graph, each FM-refined; keep the best;
//   3. uncoarsen: project each level up and FM-refine with the
//                 configured (LIFO or CLIP) flat engine.
//
// vcycle() implements the refinement trick of hMetis [25][26]: take an
// existing solution, re-coarsen *respecting its parts*, and re-run the
// uncoarsening refinement.  The harness function run_hmetis_like()
// reproduces the paper's evaluation protocol: N starts, then V-cycle the
// best result among them ("hMetis-1.5 will V-cycle the best result among
// these starts", Sec. 3.2).
#pragma once

#include <string>
#include <vector>

#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/coarsen.h"
#include "src/util/thread_pool.h"

namespace vlsipart {

struct MlConfig {
  CoarsenConfig coarsen;
  /// FM policy used at every level (CLIP toggles "ML CLIP" vs "ML LIFO").
  FmConfig refine;
  /// Initial solutions tried at the coarsest level.
  std::size_t initial_tries = 8;
  /// Generator for those tries (random / BFS region growing / mixed).
  InitialScheme initial_scheme = InitialScheme::kRandom;
  /// V-cycles applied at the end of each start (0 = plain multilevel;
  /// the hMetis-like harness V-cycles only the best of N starts instead).
  std::size_t vcycles = 0;
};

class MlPartitioner final : public Bipartitioner {
 public:
  explicit MlPartitioner(MlConfig config, std::string name = {});

  std::string name() const override { return name_; }
  Weight run(const PartitionProblem& problem, Rng& rng,
             std::vector<PartId>& parts) override;
  /// The engine carries only reusable scratch and work counters across
  /// runs (no solution state), so a clone is just a fresh instance of the
  /// same configuration (enables parallel multistart).
  std::unique_ptr<Bipartitioner> clone() const override;

  /// One V-cycle: restricted coarsening around `parts`, then refinement.
  /// Returns the (never worse) cut.
  Weight vcycle(const PartitionProblem& problem, Rng& rng,
                std::vector<PartId>& parts);

  /// Recombination V-cycle (memetic engine): like vcycle(), but the
  /// restricted coarsening clusters only vertices with EQUAL labels in
  /// `guide` rather than equal parts.  The memetic recombination
  /// operator passes guide[v] = 2*p1[v] + p2[v] (the two parents'
  /// agreement classes), so clustering respects both parents at once.
  /// `guide` must REFINE `parts` — vertices sharing a guide label share
  /// a part — or the downward projection would be ill-defined; this is
  /// checked.  Accepts the result only when feasible and not worse.
  Weight vcycle_guided(const PartitionProblem& problem, Rng& rng,
                       std::vector<PartId>& parts,
                       const std::vector<PartId>& guide);

  UpdateWork update_work() const override { return work_; }

  const MlConfig& config() const { return config_; }

 private:
  /// Core multilevel descent: builds a hierarchy (optionally respecting
  /// `parts` when restricted), solves/adopts the coarsest solution, and
  /// refines on the way up.  When restricted, `cluster_guide` (if
  /// non-null) replaces `parts` as the label vector the coarsening
  /// respects; it must refine `parts`.
  Weight run_internal(const PartitionProblem& problem, Rng& rng,
                      std::vector<PartId>& parts, bool restricted,
                      const std::vector<PartId>* cluster_guide = nullptr);

  /// Lazily created owned pool, sized max(refine_threads,
  /// coarsen_threads); nullptr while both knobs are 1.  Owned (not
  /// shared) so cloned engines in parallel multistart get private
  /// workers.
  ThreadPool* acquire_pool();

  MlConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::string name_;
  /// Gain-update work accumulated over every refine at every level.
  UpdateWork work_;
  /// Reusable contraction scratch shared by all hierarchies this engine
  /// builds (runs, V-cycles).  Cloned engines get fresh scratch, so the
  /// parallel multistart invariant (one engine per worker) keeps this
  /// single-threaded.
  ContractionMemory contraction_memory_;
};

/// The paper's hMetis evaluation protocol (Sec. 3.2): run `num_starts`
/// independent ML starts, keep the best, then V-cycle it `vcycles_on_best`
/// times.  Returns the multistart record with best_parts/best_cut updated
/// by the trailing V-cycles and total CPU including them.  The starts run
/// on `num_threads` workers (the trailing V-cycles are inherently serial).
MultistartResult run_hmetis_like(const PartitionProblem& problem,
                                 MlPartitioner& partitioner,
                                 std::size_t num_starts,
                                 std::size_t vcycles_on_best,
                                 std::uint64_t seed,
                                 std::size_t num_threads = 1);

}  // namespace vlsipart
