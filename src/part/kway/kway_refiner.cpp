#include "src/part/kway/kway_refiner.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/prefetch.h"

namespace vlsipart {

namespace {
/// Same pin-walk prefetch policy as the 2-way refiner (fm_refiner.cpp):
/// hint only on nets large enough that the per-pin metadata gather
/// dominates the walk.
constexpr std::size_t kPinPrefetchDistance = 8;
constexpr std::size_t kPinPrefetchMinPins = 16;
}  // namespace

KwayFmRefiner::KwayFmRefiner(const KwayProblem& problem, KwayFmConfig config)
    : problem_(&problem),
      config_(config),
      pool_(problem.graph->num_vertices()) {
  const Hypergraph& h = *problem.graph;
  Gain max_wdeg = 0;
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    Gain wdeg = 0;
    for (const EdgeId e : h.incident_edges(static_cast<VertexId>(v))) {
      wdeg += h.edge_weight(e);
    }
    max_wdeg = std::max(max_wdeg, wdeg);
  }
  max_abs_gain_ = max_wdeg;
  const std::size_t n = h.num_vertices();
  target_.assign(n, kNoPart);
  locked_.assign(n, 0);
  use_lookahead_ = config_.lookahead_depth > 1;
}

void KwayFmRefiner::level_gains(const KwayState& state, VertexId v,
                                std::vector<Gain>& out) const {
  // Level gains of the direction (v: from -> to), computed on the
  // from/to two-block projection of each net — the natural restriction
  // of Krishnamurthy's binding numbers [30] to one k-way move direction,
  // as in Sanchis's k-way extension [32].  Exactly the 2-way definition
  // when k = 2.
  const Hypergraph& h = *problem_->graph;
  const PartId from = state.part(v);
  const PartId to = target_[v];
  const auto depth = static_cast<std::size_t>(config_.lookahead_depth);
  const std::size_t k = state.k();
  out.assign(depth - 1, 0);  // hot-path: allow(reused scratch, bounded by lookahead depth)
  for (const EdgeId e : h.incident_edges(v)) {
    // Nets with pins outside {from, to} cannot be uncut by from/to
    // moves alone; skip them.
    const std::uint32_t in_from = state.pins_in(e, from);
    const std::uint32_t in_to = state.pins_in(e, to);
    bool outside = false;
    for (PartId p = 0; p < static_cast<PartId>(k); ++p) {
      if (p != from && p != to && state.pins_in(e, p) > 0) {
        outside = true;
        break;
      }
    }
    if (outside) continue;
    const Weight w = h.edge_weight(e);
    const std::size_t base = static_cast<std::size_t>(e) * k;
    const std::uint32_t locked_from = locked_in_[base + from];
    const std::uint32_t locked_to = locked_in_[base + to];
    if (locked_from == 0) {
      const std::uint32_t free_from = in_from;
      if (in_to > 0 && free_from >= 2 && free_from <= depth) {
        out[free_from - 2] += w;
      }
    }
    if (locked_to == 0) {
      const std::uint32_t free_to = in_to;
      if (free_to >= 1 && free_to + 1 <= depth) {
        out[free_to - 1] -= w;
      }
    }
  }
}

VertexId KwayFmRefiner::lookahead_pick(const KwayState& state,
                                       VertexId head) const {
  VertexId best = kInvalidVertex;
  std::vector<Gain> best_vec;
  std::vector<Gain> vec;
  std::size_t scanned = 0;
  for (VertexId v = head;
       v != kInvalidVertex && scanned < config_.lookahead_scan_limit;
       v = pool_.next(v), ++scanned) {
    if (!target_legal(state, v, target_[v])) continue;
    level_gains(state, v, vec);
    if (best == kInvalidVertex || vec > best_vec) {
      best = v;
      best_vec = vec;
    }
  }
  return best;
}

void KwayFmRefiner::pool_insert(VertexId v, Gain key, PartId target) {
  key = std::clamp(key, -max_abs_gain_, max_abs_gain_);
  target_[v] = target;
  pool_.push_front(v, 0, key);  // LIFO
}

VertexId KwayFmRefiner::pool_top_head() const {
  if (pool_.empty()) return kInvalidVertex;
  return pool_.front(0, pool_.max_key(0));
}

bool KwayFmRefiner::target_legal(const KwayState& state, VertexId v,
                                 PartId to) const {
  const Weight w = problem_->graph->vertex_weight(v);
  return state.part_weight(to) + w <= problem_->max_part &&
         state.part_weight(state.part(v)) - w >= problem_->min_part;
}

PartId KwayFmRefiner::best_target(const KwayState& state, VertexId v,
                                  bool require_legal) const {
  const PartId from = state.part(v);
  PartId best = kNoPart;
  Gain best_gain = 0;
  for (PartId t = 0; t < static_cast<PartId>(state.k()); ++t) {
    if (t == from) continue;
    if (require_legal && !target_legal(state, v, t)) continue;
    const Gain g = state.gain(v, t);
    if (best == kNoPart || g > best_gain) {
      best = t;
      best_gain = g;
    }
  }
  return best;
}

// hot-path: root
Weight KwayFmRefiner::run_pass(KwayState& state, Rng& rng) {
  (void)rng;  // deterministic pass; parameter kept for parity/extension
  const Hypergraph& h = *problem_->graph;
  const std::size_t n = h.num_vertices();

  pool_.reset(max_abs_gain_);
  std::fill(locked_.begin(), locked_.end(), 0);
  move_order_.clear();
  if (use_lookahead_) {
    locked_in_.assign(h.num_edges() * state.k(), 0);  // hot-path: allow(per-pass reset of reused buffer)
    // Fixed vertices never move: binding numbers see them as locked.
    for (std::size_t v = 0; v < n; ++v) {
      const auto vid = static_cast<VertexId>(v);
      if (!problem_->is_fixed(vid)) continue;
      for (const EdgeId e : h.incident_edges(vid)) {
        ++locked_in_[static_cast<std::size_t>(e) * state.k() +
                     state.part(vid)];
      }
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<VertexId>(v);
    if (problem_->is_fixed(vid)) continue;
    const PartId t = best_target(state, vid, /*require_legal=*/false);
    if (t == kNoPart) continue;
    pool_insert(vid, state.gain(vid, t), t);
  }

  const Weight cut_before = state.cut();
  Weight best_cut = cut_before;
  std::size_t best_prefix = 0;
  std::size_t moves_since_best = 0;

  while (!pool_.empty()) {
    VertexId v = pool_top_head();
    if (v == kInvalidVertex) break;
    if (use_lookahead_) {
      // Sanchis level-gain tie-breaking among the top bucket's legal
      // candidates; fall back to the head when none has a legal target.
      const VertexId pick = lookahead_pick(state, v);
      if (pick != kInvalidVertex) v = pick;
    }

    PartId to = target_[v];
    if (!target_legal(state, v, to)) {
      // Downgrade to the best *legal* target; keys only decrease, so
      // reinsertion makes progress.
      to = best_target(state, v, /*require_legal=*/true);
      if (to == kNoPart) {
        pool_.erase(v);
        continue;
      }
      const Gain g = state.gain(v, to);
      if (g < pool_.key(v)) {
        pool_.erase(v);
        pool_insert(v, g, to);
        continue;
      }
      // Equal key with a legal target: fall through and take it.
    }

    pool_.erase(v);
    locked_[v] = 1;
    const PartId from = state.part(v);
    state.move(v, to);
    move_order_.push_back({v, from});  // hot-path: allow(move log, geometric growth amortized over passes)
    if (use_lookahead_) {
      for (const EdgeId e : h.incident_edges(v)) {
        ++locked_in_[static_cast<std::size_t>(e) * state.k() + to];
      }
    }

    // Eager exact update of every free neighbor's best candidate.
    for (const EdgeId e : h.incident_edges(v)) {
      const auto pins = h.pins(e);
      const std::size_t prefetch_end =
          pins.size() >= kPinPrefetchMinPins
              ? pins.size() - kPinPrefetchDistance
              : 0;
      for (std::size_t j = 0; j < pins.size(); ++j) {
        if (j < prefetch_end) {
          const VertexId ahead = pins[j + kPinPrefetchDistance];
          pool_.prefetch(ahead);
          VP_PREFETCH_READ(&locked_[ahead]);
        }
        const VertexId y = pins[j];
        if (y == v || locked_[y] || !pool_.contains(y)) continue;
        const PartId t = best_target(state, y, /*require_legal=*/false);
        pool_.erase(y);
        if (t != kNoPart) pool_insert(y, state.gain(y, t), t);
      }
    }

    const Weight cut = state.cut();
    if (cut < best_cut) {
      best_cut = cut;
      best_prefix = move_order_.size();
      moves_since_best = 0;
    } else {
      ++moves_since_best;
      if (config_.max_moves_past_best > 0 &&
          moves_since_best >= config_.max_moves_past_best) {
        break;
      }
    }
  }

  for (std::size_t i = move_order_.size(); i > best_prefix; --i) {
    state.move(move_order_[i - 1].v, move_order_[i - 1].from);
  }
  return cut_before - state.cut();
}

KwayFmResult KwayFmRefiner::refine(KwayState& state, Rng& rng) {
  KwayFmResult result;
  result.initial_cut = state.cut();
  int passes = 0;
  while (true) {
    const std::size_t moves_before = move_order_.size();
    const Weight improvement = run_pass(state, rng);
    (void)moves_before;
    result.total_moves += move_order_.size();
    ++passes;
    if (improvement <= 0) break;
    if (config_.max_passes > 0 && passes >= config_.max_passes) break;
  }
  result.passes = static_cast<std::size_t>(passes);
  result.final_cut = state.cut();
  return result;
}

}  // namespace vlsipart
