#include "src/part/kway/recursive_bisection.h"

#include <cmath>
#include <sstream>

#include "src/hypergraph/subgraph.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/kway/kway_refiner.h"
#include "src/util/logging.h"

namespace vlsipart {
namespace {

class KwayDriver {
 public:
  KwayDriver(const Hypergraph& h, const KwayConfig& config)
      : h_(h), config_(config) {
    // Per-bisection slack so that accumulated drift over the recursion
    // depth stays within the final per-part tolerance band.
    std::size_t levels = 0;
    for (std::size_t k = 1; k < config.k; k *= 2) ++levels;
    slack_fraction_ =
        config.tolerance / (2.0 * static_cast<double>(std::max<std::size_t>(
                                      1, levels)));
    result_.parts.assign(h.num_vertices(), 0);
  }

  KwayResult run() {
    std::vector<VertexId> all(h_.num_vertices());
    for (std::size_t v = 0; v < all.size(); ++v) {
      all[v] = static_cast<VertexId>(v);
    }
    split(all, config_.k, /*first_part=*/0, config_.seed);
    if (config_.refine_passes > 0 && config_.k >= 2) {
      // Direct k-way FM polish (Sanchis-style first-order passes).
      KwayProblem problem =
          KwayProblem::uniform(h_, config_.k, config_.tolerance);
      KwayState state(h_, config_.k);
      state.assign(result_.parts);
      KwayFmConfig refine_config;
      refine_config.max_passes = config_.refine_passes;
      KwayFmRefiner refiner(problem, refine_config);
      Rng rng(config_.seed ^ 0x4B57A9ULL);
      refiner.refine(state, rng);
      // Keep the polish only if it did not break the RB balance.
      if (check_kway(h_, state.parts(), config_.k, config_.tolerance)
              .empty()) {
        result_.parts = state.parts();
      }
    }
    result_.cut = kway_cut(h_, result_.parts);
    result_.part_weights.assign(config_.k, 0);
    for (std::size_t v = 0; v < h_.num_vertices(); ++v) {
      result_.part_weights[result_.parts[v]] +=
          h_.vertex_weight(static_cast<VertexId>(v));
    }
    return std::move(result_);
  }

 private:
  void split(const std::vector<VertexId>& cells, std::size_t k,
             std::size_t first_part, std::uint64_t seed) {
    if (k == 1) {
      for (const VertexId v : cells) {
        result_.parts[v] = static_cast<PartId>(first_part);
      }
      return;
    }
    const std::size_t k0 = k / 2;
    const std::size_t k1 = k - k0;

    // Sub-hypergraph over this block's cells (nets projected onto their
    // internal pins; < 2 internal pins dropped).
    Subhypergraph extracted = extract_subhypergraph(h_, cells);
    const Hypergraph& sub = extracted.graph;
    const Weight subtotal = sub.total_vertex_weight();

    // Capacity-proportional asymmetric balance: part 0 of this bisection
    // holds k0/k of the block's weight, within the per-level slack.
    const double share = static_cast<double>(k0) / static_cast<double>(k);
    const double target0 = static_cast<double>(subtotal) * share;
    const auto slack = static_cast<Weight>(target0 * slack_fraction_) + 1;
    PartitionProblem problem;
    problem.graph = &sub;
    problem.balance = BalanceConstraint::from_bounds(
        subtotal, static_cast<Weight>(target0) - slack,
        static_cast<Weight>(target0) + slack);

    std::vector<PartId> parts;
    if (config_.use_ml) {
      MlConfig ml = config_.ml;
      ml.refine = config_.fm;
      MlPartitioner engine(ml);
      const MultistartResult r = run_multistart(
          problem, engine, config_.starts_per_level, seed);
      parts = r.best_parts;
    } else {
      FlatFmPartitioner engine(config_.fm);
      const MultistartResult r = run_multistart(
          problem, engine, config_.starts_per_level, seed);
      parts = r.best_parts;
    }
    if (parts.empty()) {
      parts = lpt_initial(problem);  // all starts infeasible: fall back
    }
    ++result_.bisections;

    std::vector<VertexId> lo;
    std::vector<VertexId> hi;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      (parts[i] == 0 ? lo : hi).push_back(cells[i]);
    }
    split(lo, k0, first_part, seed * 6364136223846793005ULL + 1);
    split(hi, k1, first_part + k0, seed * 6364136223846793005ULL + 2);
  }

  const Hypergraph& h_;
  KwayConfig config_;
  double slack_fraction_;
  KwayResult result_;
};

}  // namespace

KwayResult recursive_bisection(const Hypergraph& h,
                               const KwayConfig& config) {
  VP_CHECK(config.k >= 2 && config.k <= 128, "k in [2, 128]");
  KwayDriver driver(h, config);
  return driver.run();
}

Weight kway_cut(const Hypergraph& h, const std::vector<PartId>& parts) {
  VP_CHECK(parts.size() == h.num_vertices(), "assignment covers vertices");
  Weight cut = 0;
  for (std::size_t e = 0; e < h.num_edges(); ++e) {
    const auto span = h.pins(static_cast<EdgeId>(e));
    const PartId first = parts[span.front()];
    for (const VertexId v : span) {
      if (parts[v] != first) {
        cut += h.edge_weight(static_cast<EdgeId>(e));
        break;
      }
    }
  }
  return cut;
}

std::string check_kway(const Hypergraph& h, const std::vector<PartId>& parts,
                       std::size_t k, double tolerance) {
  if (parts.size() != h.num_vertices()) return "assignment size mismatch";
  std::vector<Weight> weights(k, 0);
  for (std::size_t v = 0; v < parts.size(); ++v) {
    if (parts[v] >= k) {
      return "vertex " + std::to_string(v) + " has part out of range";
    }
    weights[parts[v]] += h.vertex_weight(static_cast<VertexId>(v));
  }
  const double capacity = static_cast<double>(h.total_vertex_weight()) /
                          static_cast<double>(k);
  for (std::size_t p = 0; p < k; ++p) {
    const double lo = capacity * (1.0 - tolerance / 2.0) - 1.0;
    const double hi = capacity * (1.0 + tolerance / 2.0) + 1.0;
    if (static_cast<double>(weights[p]) < lo ||
        static_cast<double>(weights[p]) > hi) {
      std::ostringstream out;
      out << "part " << p << " weight " << weights[p] << " outside ["
          << lo << ", " << hi << "]";
      return out.str();
    }
  }
  return {};
}

}  // namespace vlsipart
