// Direct k-way FM refinement pass (first-order Sanchis scheme [32]).
//
// Each free vertex owns one candidate move: to the target part with the
// highest first-order gain.  Candidates live in a single gain-bucket
// pool keyed by that gain.  A pass repeatedly extracts the best legal
// candidate, applies it, locks the vertex, updates neighbor candidates,
// and finally rolls back to the best prefix — the same pass discipline
// as the 2-way engine.  (Sanchis's full scheme adds Krishnamurthy level
// gains per direction; this implementation is the standard first-order
// variant, which is what later k-way partitioners adopted.)
//
// Used to polish recursive-bisection solutions: RB fixes the block
// hierarchy top-down and cannot move a vertex between cousin blocks;
// direct k-way passes can.
#pragma once

#include <vector>

#include "src/part/core/bucket_array.h"
#include "src/part/kway/kway_state.h"
#include "src/util/rng.h"

namespace vlsipart {

struct KwayFmConfig {
  /// Stop after this many passes even if still improving; <= 0 = until
  /// no improvement.
  int max_passes = -1;
  /// Abandon a pass after this many consecutive non-improving moves
  /// (0 = full pass).
  std::size_t max_moves_past_best = 0;
  /// Sanchis level gains [32]: 1 = first-order only; r > 1 breaks ties
  /// among equal-gain candidates at the top bucket by comparing
  /// Krishnamurthy-style level-2..r gains of the stored (vertex, target)
  /// directions lexicographically.
  int lookahead_depth = 1;
  /// Bucket-scan bound when lookahead tie-breaking is active.
  std::size_t lookahead_scan_limit = 8;
};

struct KwayFmResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  std::size_t passes = 0;
  std::size_t total_moves = 0;
};

class KwayFmRefiner {
 public:
  KwayFmRefiner(const KwayProblem& problem, KwayFmConfig config);

  /// Refine in place; never worsens the cut, preserves feasibility.
  KwayFmResult refine(KwayState& state, Rng& rng);

 private:
  struct MoveRecord {
    VertexId v;
    PartId from;
  };

  /// Best-gain target for v given current weights; returns kNoPart if no
  /// target is legal.  Prefers the highest gain; ties broken by lowest
  /// part id (deterministic).
  PartId best_target(const KwayState& state, VertexId v,
                     bool require_legal) const;
  bool target_legal(const KwayState& state, VertexId v, PartId to) const;

  /// Level-2..r gains of moving v toward target_[v] (binding numbers
  /// over free/locked per-part pin counts, Sanchis [32]).
  void level_gains(const KwayState& state, VertexId v,
                   std::vector<Gain>& out) const;
  /// Among the first lookahead_scan_limit pool entries of the top
  /// bucket, the one with the lexicographically largest level-gain
  /// vector whose stored target is legal; kInvalidVertex if none.
  VertexId lookahead_pick(const KwayState& state, VertexId head) const;

  Weight run_pass(KwayState& state, Rng& rng);

  const KwayProblem* problem_;
  KwayFmConfig config_;
  Gain max_abs_gain_ = 0;

  /// Candidate moves live in the same SoA bucket kernel the 2-way
  /// refiner uses (bucket_array.h), instantiated as a single pool:
  /// sentinel-threaded branchless bucket lists, derived keys, sparse
  /// reset, descending max cursor.  target_[v] carries the candidate's
  /// destination part alongside the pool key.
  BucketArray<1> pool_;
  std::vector<PartId> target_;
  std::vector<std::uint8_t> locked_;
  /// Per-(edge, part) locked pin counts (e * k + p); maintained only
  /// when level-gain tie-breaking is active.
  std::vector<std::uint32_t> locked_in_;
  bool use_lookahead_ = false;

  void pool_insert(VertexId v, Gain key, PartId target);
  VertexId pool_top_head() const;

  std::vector<MoveRecord> move_order_;
};

}  // namespace vlsipart
