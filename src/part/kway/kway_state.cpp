#include "src/part/kway/kway_state.h"

#include <cmath>
#include <sstream>

#include "src/util/logging.h"
#include "src/util/prefetch.h"

namespace vlsipart {

KwayProblem KwayProblem::uniform(const Hypergraph& graph, std::size_t k,
                                 double tolerance) {
  KwayProblem p;
  p.graph = &graph;
  p.k = k;
  const double capacity =
      static_cast<double>(graph.total_vertex_weight()) /
      static_cast<double>(k);
  p.min_part = static_cast<Weight>(
      std::floor(capacity * (1.0 - tolerance / 2.0)));
  p.max_part =
      static_cast<Weight>(std::ceil(capacity * (1.0 + tolerance / 2.0)));
  return p;
}

KwayState::KwayState(const Hypergraph& h, std::size_t k)
    : h_(&h),
      k_(k),
      parts_(h.num_vertices(), kNoPart),
      part_weight_(k, 0),
      pins_in_(h.num_edges() * k, 0),
      spanned_(h.num_edges(), 0) {
  VP_CHECK(k >= 2 && k < kNoPart, "k in [2, 254]");
}

void KwayState::assign(std::span<const PartId> parts) {
  VP_CHECK(parts.size() == h_->num_vertices(), "assignment covers vertices");
  parts_.assign(parts.begin(), parts.end());
  std::fill(part_weight_.begin(), part_weight_.end(), 0);
  std::fill(pins_in_.begin(), pins_in_.end(), 0);
  cut_ = 0;
  for (std::size_t v = 0; v < parts_.size(); ++v) {
    VP_CHECK(parts_[v] < k_, "part in range, v=" << v);
    part_weight_[parts_[v]] += h_->vertex_weight(static_cast<VertexId>(v));
  }
  for (std::size_t e = 0; e < h_->num_edges(); ++e) {
    std::uint32_t spanned = 0;
    for (const VertexId v : h_->pins(static_cast<EdgeId>(e))) {
      if (pins_in_[e * k_ + parts_[v]]++ == 0) ++spanned;
    }
    spanned_[e] = spanned;
    if (spanned >= 2) cut_ += h_->edge_weight(static_cast<EdgeId>(e));
  }
}

void KwayState::move(VertexId v, PartId to) {
  const PartId from = parts_[v];
  VP_DCHECK(from < k_ && to < k_ && from != to, "valid move");
  const Weight w = h_->vertex_weight(v);
  const auto nets = h_->incident_edges(v);
  // The k per-part counters of a net are contiguous (row e*k..e*k+k-1),
  // so one prefetch per upcoming net covers the whole transition; the
  // spanned_ counter rides on a second stream.
  constexpr std::size_t kNetPrefetchDistance = 4;
  const std::size_t prefetch_end =
      nets.size() > kNetPrefetchDistance ? nets.size() - kNetPrefetchDistance
                                         : 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (i < prefetch_end) {
      const EdgeId ahead = nets[i + kNetPrefetchDistance];
      VP_PREFETCH_WRITE(&pins_in_[static_cast<std::size_t>(ahead) * k_]);
      VP_PREFETCH_WRITE(&spanned_[ahead]);
    }
    const EdgeId e = nets[i];
    const std::size_t base = static_cast<std::size_t>(e) * k_;
    const bool was_cut = spanned_[e] >= 2;
    if (--pins_in_[base + from] == 0) --spanned_[e];
    if (pins_in_[base + to]++ == 0) ++spanned_[e];
    const bool now_cut = spanned_[e] >= 2;
    if (was_cut != now_cut) {
      cut_ += now_cut ? h_->edge_weight(e) : -h_->edge_weight(e);
    }
  }
  parts_[v] = to;
  part_weight_[from] -= w;
  part_weight_[to] += w;
}

Gain KwayState::gain(VertexId v, PartId to) const {
  const PartId from = parts_[v];
  VP_DCHECK(to < k_ && to != from, "valid gain query");
  Gain g = 0;
  for (const EdgeId e : h_->incident_edges(v)) {
    const std::size_t base = static_cast<std::size_t>(e) * k_;
    const Weight w = h_->edge_weight(e);
    const std::uint32_t in_from = pins_in_[base + from];
    const std::uint32_t in_to = pins_in_[base + to];
    // Spanned-part count changes only through the 0/1 thresholds of the
    // from/to slots.
    std::uint32_t spanned = spanned_[e];
    std::uint32_t new_spanned = spanned;
    if (in_from == 1) --new_spanned;
    if (in_to == 0) ++new_spanned;
    const bool was_cut = spanned >= 2;
    const bool now_cut = new_spanned >= 2;
    if (was_cut && !now_cut) g += w;
    if (!was_cut && now_cut) g -= w;
  }
  return g;
}

void KwayState::audit() const {
  std::vector<Weight> weights(k_, 0);
  for (std::size_t v = 0; v < parts_.size(); ++v) {
    VP_CHECK(parts_[v] < k_, "vertex assigned, v=" << v);
    weights[parts_[v]] += h_->vertex_weight(static_cast<VertexId>(v));
  }
  for (std::size_t p = 0; p < k_; ++p) {
    VP_CHECK(weights[p] == part_weight_[p], "part weight matches, p=" << p);
  }
  Weight cut = 0;
  for (std::size_t e = 0; e < h_->num_edges(); ++e) {
    std::vector<std::uint32_t> counts(k_, 0);
    std::uint32_t spanned = 0;
    for (const VertexId v : h_->pins(static_cast<EdgeId>(e))) {
      if (counts[parts_[v]]++ == 0) ++spanned;
    }
    for (std::size_t p = 0; p < k_; ++p) {
      VP_CHECK(counts[p] == pins_in_[e * k_ + p],
               "pin counts match, e=" << e << " p=" << p);
    }
    VP_CHECK(spanned == spanned_[e], "spanned count matches, e=" << e);
    if (spanned >= 2) cut += h_->edge_weight(static_cast<EdgeId>(e));
  }
  VP_CHECK(cut == cut_, "k-way cut matches recomputation");
}

std::string check_kway_solution(const KwayProblem& problem,
                                std::span<const PartId> parts) {
  const Hypergraph& h = *problem.graph;
  if (parts.size() != h.num_vertices()) return "assignment size mismatch";
  std::vector<Weight> weights(problem.k, 0);
  for (std::size_t v = 0; v < parts.size(); ++v) {
    if (parts[v] >= problem.k) {
      return "vertex " + std::to_string(v) + " part out of range";
    }
    if (problem.is_fixed(static_cast<VertexId>(v)) &&
        parts[v] != problem.fixed[v]) {
      return "fixed vertex " + std::to_string(v) + " moved";
    }
    weights[parts[v]] += h.vertex_weight(static_cast<VertexId>(v));
  }
  for (std::size_t p = 0; p < problem.k; ++p) {
    if (weights[p] < problem.min_part || weights[p] > problem.max_part) {
      std::ostringstream out;
      out << "part " << p << " weight " << weights[p] << " outside ["
          << problem.min_part << ", " << problem.max_part << "]";
      return out.str();
    }
  }
  return {};
}

}  // namespace vlsipart
