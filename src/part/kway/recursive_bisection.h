// k-way partitioning by recursive bisection.
//
// The paper restricts its experiments to 2-way FM but names "the
// difficulty of multi-way partitioning" as one of two "fundamental gaps
// in knowledge" (Sec. 4).  This module provides the standard top-down
// answer: recursively bisect with the 2-way engines, splitting k into
// floor(k/2)/ceil(k/2) subtrees with capacity-proportional balance at
// each level — the same decomposition top-down placement uses.
//
// k-way cut is counted as the number (weighted sum) of nets spanning
// two or more of the k parts, matching the paper's cut-size objective.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hypergraph/hypergraph.h"
#include "src/part/ml/ml_partitioner.h"

namespace vlsipart {

struct KwayConfig {
  std::size_t k = 4;
  /// Per-part weight tolerance: each part must weigh within
  /// (1 +- tolerance/2) * (its capacity share of total).
  double tolerance = 0.10;
  /// Engine for each bisection: ML when true (default), flat FM when
  /// false.
  bool use_ml = true;
  FmConfig fm;       ///< flat policy (also the ML refinement policy)
  MlConfig ml;       ///< ML settings (refine is overwritten with `fm`)
  std::size_t starts_per_level = 2;
  std::uint64_t seed = 1;
  /// Direct k-way FM polish passes applied after the recursive
  /// decomposition (0 = RB result as-is).  RB fixes the block hierarchy
  /// top-down; direct k-way passes can move vertices between cousin
  /// blocks and typically recover a few percent of cut.
  int refine_passes = 2;
};

struct KwayResult {
  /// parts[v] in [0, k).
  std::vector<PartId> parts;
  /// Nets spanning >= 2 parts (weighted).
  Weight cut = 0;
  /// Per-part total vertex weight.
  std::vector<Weight> part_weights;
  /// Bisections performed.
  std::size_t bisections = 0;
};

/// Partition into k parts (2 <= k <= 128).
KwayResult recursive_bisection(const Hypergraph& h, const KwayConfig& config);

/// k-way cut of an assignment: weighted count of nets with pins in two
/// or more distinct parts.
Weight kway_cut(const Hypergraph& h, const std::vector<PartId>& parts);

/// Empty string if every part weight is within the per-part tolerance
/// band and every vertex has a part < k; else a violation description.
std::string check_kway(const Hypergraph& h, const std::vector<PartId>& parts,
                       std::size_t k, double tolerance);

}  // namespace vlsipart
