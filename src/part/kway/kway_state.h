// Incremental k-way partition state (generalizes PartitionState).
//
// Maintains per-net pin counts for each of the k parts, per-part
// weights, and the k-way cut (nets spanning >= 2 parts) under O(degree)
// single-vertex moves.  The substrate for direct k-way FM refinement
// (Sanchis [32]) on top of recursive bisection.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/hypergraph/hypergraph.h"

namespace vlsipart {

/// A k-way problem: per-part weight window plus optional fixed vertices.
struct KwayProblem {
  const Hypergraph* graph = nullptr;
  std::size_t k = 2;
  Weight min_part = 0;
  Weight max_part = 0;
  std::vector<PartId> fixed;  // empty = all free

  /// Uniform capacity window: each part in
  /// [capacity*(1-tol/2), capacity*(1+tol/2)], capacity = total/k.
  static KwayProblem uniform(const Hypergraph& graph, std::size_t k,
                             double tolerance);

  bool is_fixed(VertexId v) const {
    return !fixed.empty() && fixed[v] != kNoPart;
  }
};

class KwayState {
 public:
  KwayState(const Hypergraph& h, std::size_t k);

  std::size_t k() const { return k_; }
  const Hypergraph& graph() const { return *h_; }

  /// Bulk-assign (each entry < k) and recompute in O(pins * 1).
  void assign(std::span<const PartId> parts);

  /// Move v to part `to` (must differ from its current part).
  void move(VertexId v, PartId to);

  PartId part(VertexId v) const { return parts_[v]; }
  const std::vector<PartId>& parts() const { return parts_; }
  Weight part_weight(PartId p) const { return part_weight_[p]; }

  std::uint32_t pins_in(EdgeId e, PartId p) const {
    return pins_in_[static_cast<std::size_t>(e) * k_ + p];
  }
  /// Number of distinct parts with pins on e.
  std::uint32_t spanned_parts(EdgeId e) const { return spanned_[e]; }

  /// Weighted k-way cut: nets spanning >= 2 parts.
  Weight cut() const { return cut_; }

  /// Gain of moving v to part `to` under the k-way cut objective:
  ///   +w(e) for nets that would stop spanning >= 2 parts,
  ///   -w(e) for nets that would start spanning >= 2 parts.
  Gain gain(VertexId v, PartId to) const;

  /// Recompute everything and compare; throws on mismatch.  O(pins*k).
  void audit() const;

 private:
  const Hypergraph* h_;
  std::size_t k_;
  std::vector<PartId> parts_;
  std::vector<Weight> part_weight_;
  std::vector<std::uint32_t> pins_in_;  // e * k + p
  std::vector<std::uint32_t> spanned_;  // per edge
  Weight cut_ = 0;
};

/// Empty string if feasible (all parts within [min,max], fixed
/// respected); else a description.
std::string check_kway_solution(const KwayProblem& problem,
                                std::span<const PartId> parts);

}  // namespace vlsipart
