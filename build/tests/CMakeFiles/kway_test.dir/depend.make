# Empty dependencies file for kway_test.
# This may be replaced when dependencies are built.
