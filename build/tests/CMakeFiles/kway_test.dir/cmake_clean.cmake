file(REMOVE_RECURSE
  "CMakeFiles/kway_test.dir/kway_test.cpp.o"
  "CMakeFiles/kway_test.dir/kway_test.cpp.o.d"
  "kway_test"
  "kway_test.pdb"
  "kway_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
