# Empty dependencies file for multistart_test.
# This may be replaced when dependencies are built.
