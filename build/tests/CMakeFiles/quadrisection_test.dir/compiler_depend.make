# Empty compiler generated dependencies file for quadrisection_test.
# This may be replaced when dependencies are built.
