file(REMOVE_RECURSE
  "CMakeFiles/quadrisection_test.dir/quadrisection_test.cpp.o"
  "CMakeFiles/quadrisection_test.dir/quadrisection_test.cpp.o.d"
  "quadrisection_test"
  "quadrisection_test.pdb"
  "quadrisection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadrisection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
