file(REMOVE_RECURSE
  "CMakeFiles/fm_refiner_test.dir/fm_refiner_test.cpp.o"
  "CMakeFiles/fm_refiner_test.dir/fm_refiner_test.cpp.o.d"
  "fm_refiner_test"
  "fm_refiner_test.pdb"
  "fm_refiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_refiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
