# Empty dependencies file for fm_refiner_test.
# This may be replaced when dependencies are built.
