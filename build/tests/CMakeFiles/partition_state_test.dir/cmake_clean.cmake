file(REMOVE_RECURSE
  "CMakeFiles/partition_state_test.dir/partition_state_test.cpp.o"
  "CMakeFiles/partition_state_test.dir/partition_state_test.cpp.o.d"
  "partition_state_test"
  "partition_state_test.pdb"
  "partition_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
