# Empty compiler generated dependencies file for partition_state_test.
# This may be replaced when dependencies are built.
