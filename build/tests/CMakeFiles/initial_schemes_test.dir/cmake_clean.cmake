file(REMOVE_RECURSE
  "CMakeFiles/initial_schemes_test.dir/initial_schemes_test.cpp.o"
  "CMakeFiles/initial_schemes_test.dir/initial_schemes_test.cpp.o.d"
  "initial_schemes_test"
  "initial_schemes_test.pdb"
  "initial_schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initial_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
