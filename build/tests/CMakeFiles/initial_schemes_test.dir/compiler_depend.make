# Empty compiler generated dependencies file for initial_schemes_test.
# This may be replaced when dependencies are built.
