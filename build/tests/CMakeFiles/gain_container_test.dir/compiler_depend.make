# Empty compiler generated dependencies file for gain_container_test.
# This may be replaced when dependencies are built.
