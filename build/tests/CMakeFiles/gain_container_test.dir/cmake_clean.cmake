file(REMOVE_RECURSE
  "CMakeFiles/gain_container_test.dir/gain_container_test.cpp.o"
  "CMakeFiles/gain_container_test.dir/gain_container_test.cpp.o.d"
  "gain_container_test"
  "gain_container_test.pdb"
  "gain_container_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gain_container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
