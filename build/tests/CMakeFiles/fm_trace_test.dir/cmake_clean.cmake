file(REMOVE_RECURSE
  "CMakeFiles/fm_trace_test.dir/fm_trace_test.cpp.o"
  "CMakeFiles/fm_trace_test.dir/fm_trace_test.cpp.o.d"
  "fm_trace_test"
  "fm_trace_test.pdb"
  "fm_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
