# Empty dependencies file for fm_trace_test.
# This may be replaced when dependencies are built.
