file(REMOVE_RECURSE
  "CMakeFiles/kway_refiner_test.dir/kway_refiner_test.cpp.o"
  "CMakeFiles/kway_refiner_test.dir/kway_refiner_test.cpp.o.d"
  "kway_refiner_test"
  "kway_refiner_test.pdb"
  "kway_refiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kway_refiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
