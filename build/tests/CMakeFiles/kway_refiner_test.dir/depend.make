# Empty dependencies file for kway_refiner_test.
# This may be replaced when dependencies are built.
