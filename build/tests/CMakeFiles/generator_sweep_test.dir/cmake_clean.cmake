file(REMOVE_RECURSE
  "CMakeFiles/generator_sweep_test.dir/generator_sweep_test.cpp.o"
  "CMakeFiles/generator_sweep_test.dir/generator_sweep_test.cpp.o.d"
  "generator_sweep_test"
  "generator_sweep_test.pdb"
  "generator_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
