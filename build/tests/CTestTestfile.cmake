# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hypergraph_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/partition_state_test[1]_include.cmake")
include("/root/repo/build/tests/gain_container_test[1]_include.cmake")
include("/root/repo/build/tests/fm_refiner_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/multistart_test[1]_include.cmake")
include("/root/repo/build/tests/flows_test[1]_include.cmake")
include("/root/repo/build/tests/significance_test[1]_include.cmake")
include("/root/repo/build/tests/kway_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/lookahead_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kway_refiner_test[1]_include.cmake")
include("/root/repo/build/tests/generator_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/subgraph_test[1]_include.cmake")
include("/root/repo/build/tests/quadrisection_test[1]_include.cmake")
include("/root/repo/build/tests/initial_schemes_test[1]_include.cmake")
include("/root/repo/build/tests/fm_trace_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
