file(REMOVE_RECURSE
  "CMakeFiles/bench_fixed.dir/bench_fixed.cpp.o"
  "CMakeFiles/bench_fixed.dir/bench_fixed.cpp.o.d"
  "bench_fixed"
  "bench_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
