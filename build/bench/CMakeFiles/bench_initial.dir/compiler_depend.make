# Empty compiler generated dependencies file for bench_initial.
# This may be replaced when dependencies are built.
