file(REMOVE_RECURSE
  "CMakeFiles/bench_initial.dir/bench_initial.cpp.o"
  "CMakeFiles/bench_initial.dir/bench_initial.cpp.o.d"
  "bench_initial"
  "bench_initial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_initial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
