file(REMOVE_RECURSE
  "CMakeFiles/bench_kway.dir/bench_kway.cpp.o"
  "CMakeFiles/bench_kway.dir/bench_kway.cpp.o.d"
  "bench_kway"
  "bench_kway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
