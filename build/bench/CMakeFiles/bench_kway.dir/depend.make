# Empty dependencies file for bench_kway.
# This may be replaced when dependencies are built.
