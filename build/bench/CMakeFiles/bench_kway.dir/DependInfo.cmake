
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kway.cpp" "bench/CMakeFiles/bench_kway.dir/bench_kway.cpp.o" "gcc" "bench/CMakeFiles/bench_kway.dir/bench_kway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flows/CMakeFiles/vp_flows.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/vp_kway.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/vp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/vp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/vp_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/vp_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/vp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/vp_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
