file(REMOVE_RECURSE
  "CMakeFiles/bench_corking.dir/bench_corking.cpp.o"
  "CMakeFiles/bench_corking.dir/bench_corking.cpp.o.d"
  "bench_corking"
  "bench_corking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
