# Empty dependencies file for bench_corking.
# This may be replaced when dependencies are built.
