# Empty compiler generated dependencies file for bench_bsf.
# This may be replaced when dependencies are built.
