file(REMOVE_RECURSE
  "CMakeFiles/bench_bsf.dir/bench_bsf.cpp.o"
  "CMakeFiles/bench_bsf.dir/bench_bsf.cpp.o.d"
  "bench_bsf"
  "bench_bsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
