file(REMOVE_RECURSE
  "libvp_io.a"
)
