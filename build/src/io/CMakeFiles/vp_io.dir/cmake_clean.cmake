file(REMOVE_RECURSE
  "CMakeFiles/vp_io.dir/hmetis_io.cpp.o"
  "CMakeFiles/vp_io.dir/hmetis_io.cpp.o.d"
  "CMakeFiles/vp_io.dir/ispd98_io.cpp.o"
  "CMakeFiles/vp_io.dir/ispd98_io.cpp.o.d"
  "CMakeFiles/vp_io.dir/partition_io.cpp.o"
  "CMakeFiles/vp_io.dir/partition_io.cpp.o.d"
  "libvp_io.a"
  "libvp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
