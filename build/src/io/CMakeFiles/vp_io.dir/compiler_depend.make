# Empty compiler generated dependencies file for vp_io.
# This may be replaced when dependencies are built.
