
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/hmetis_io.cpp" "src/io/CMakeFiles/vp_io.dir/hmetis_io.cpp.o" "gcc" "src/io/CMakeFiles/vp_io.dir/hmetis_io.cpp.o.d"
  "/root/repo/src/io/ispd98_io.cpp" "src/io/CMakeFiles/vp_io.dir/ispd98_io.cpp.o" "gcc" "src/io/CMakeFiles/vp_io.dir/ispd98_io.cpp.o.d"
  "/root/repo/src/io/partition_io.cpp" "src/io/CMakeFiles/vp_io.dir/partition_io.cpp.o" "gcc" "src/io/CMakeFiles/vp_io.dir/partition_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/vp_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
