
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/netlist_gen.cpp" "src/gen/CMakeFiles/vp_gen.dir/netlist_gen.cpp.o" "gcc" "src/gen/CMakeFiles/vp_gen.dir/netlist_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/vp_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
