file(REMOVE_RECURSE
  "libvp_gen.a"
)
