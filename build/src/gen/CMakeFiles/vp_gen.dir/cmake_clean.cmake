file(REMOVE_RECURSE
  "CMakeFiles/vp_gen.dir/netlist_gen.cpp.o"
  "CMakeFiles/vp_gen.dir/netlist_gen.cpp.o.d"
  "libvp_gen.a"
  "libvp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
