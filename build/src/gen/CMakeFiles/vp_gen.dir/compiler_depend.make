# Empty compiler generated dependencies file for vp_gen.
# This may be replaced when dependencies are built.
