file(REMOVE_RECURSE
  "libvp_flows.a"
)
