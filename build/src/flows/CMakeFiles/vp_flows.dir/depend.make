# Empty dependencies file for vp_flows.
# This may be replaced when dependencies are built.
