file(REMOVE_RECURSE
  "CMakeFiles/vp_flows.dir/quadrisection.cpp.o"
  "CMakeFiles/vp_flows.dir/quadrisection.cpp.o.d"
  "CMakeFiles/vp_flows.dir/topdown_place.cpp.o"
  "CMakeFiles/vp_flows.dir/topdown_place.cpp.o.d"
  "libvp_flows.a"
  "libvp_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
