# Empty compiler generated dependencies file for vp_flows.
# This may be replaced when dependencies are built.
