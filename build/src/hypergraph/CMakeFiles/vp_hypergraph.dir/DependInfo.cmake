
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypergraph/contraction.cpp" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/contraction.cpp.o" "gcc" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/contraction.cpp.o.d"
  "/root/repo/src/hypergraph/hypergraph.cpp" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/hypergraph.cpp.o" "gcc" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/hypergraph.cpp.o.d"
  "/root/repo/src/hypergraph/stats.cpp" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/stats.cpp.o" "gcc" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/stats.cpp.o.d"
  "/root/repo/src/hypergraph/subgraph.cpp" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/subgraph.cpp.o" "gcc" "src/hypergraph/CMakeFiles/vp_hypergraph.dir/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
