file(REMOVE_RECURSE
  "libvp_hypergraph.a"
)
