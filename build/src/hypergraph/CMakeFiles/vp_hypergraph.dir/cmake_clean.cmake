file(REMOVE_RECURSE
  "CMakeFiles/vp_hypergraph.dir/contraction.cpp.o"
  "CMakeFiles/vp_hypergraph.dir/contraction.cpp.o.d"
  "CMakeFiles/vp_hypergraph.dir/hypergraph.cpp.o"
  "CMakeFiles/vp_hypergraph.dir/hypergraph.cpp.o.d"
  "CMakeFiles/vp_hypergraph.dir/stats.cpp.o"
  "CMakeFiles/vp_hypergraph.dir/stats.cpp.o.d"
  "CMakeFiles/vp_hypergraph.dir/subgraph.cpp.o"
  "CMakeFiles/vp_hypergraph.dir/subgraph.cpp.o.d"
  "libvp_hypergraph.a"
  "libvp_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
