# Empty compiler generated dependencies file for vp_hypergraph.
# This may be replaced when dependencies are built.
