file(REMOVE_RECURSE
  "CMakeFiles/vp_util.dir/cli.cpp.o"
  "CMakeFiles/vp_util.dir/cli.cpp.o.d"
  "CMakeFiles/vp_util.dir/logging.cpp.o"
  "CMakeFiles/vp_util.dir/logging.cpp.o.d"
  "CMakeFiles/vp_util.dir/rng.cpp.o"
  "CMakeFiles/vp_util.dir/rng.cpp.o.d"
  "CMakeFiles/vp_util.dir/stats.cpp.o"
  "CMakeFiles/vp_util.dir/stats.cpp.o.d"
  "CMakeFiles/vp_util.dir/table.cpp.o"
  "CMakeFiles/vp_util.dir/table.cpp.o.d"
  "CMakeFiles/vp_util.dir/timer.cpp.o"
  "CMakeFiles/vp_util.dir/timer.cpp.o.d"
  "libvp_util.a"
  "libvp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
