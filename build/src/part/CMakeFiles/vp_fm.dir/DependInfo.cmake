
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/part/core/balance.cpp" "src/part/CMakeFiles/vp_fm.dir/core/balance.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/balance.cpp.o.d"
  "/root/repo/src/part/core/fm_config.cpp" "src/part/CMakeFiles/vp_fm.dir/core/fm_config.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/fm_config.cpp.o.d"
  "/root/repo/src/part/core/fm_refiner.cpp" "src/part/CMakeFiles/vp_fm.dir/core/fm_refiner.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/fm_refiner.cpp.o.d"
  "/root/repo/src/part/core/gain_container.cpp" "src/part/CMakeFiles/vp_fm.dir/core/gain_container.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/gain_container.cpp.o.d"
  "/root/repo/src/part/core/initial.cpp" "src/part/CMakeFiles/vp_fm.dir/core/initial.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/initial.cpp.o.d"
  "/root/repo/src/part/core/multistart.cpp" "src/part/CMakeFiles/vp_fm.dir/core/multistart.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/multistart.cpp.o.d"
  "/root/repo/src/part/core/partition_state.cpp" "src/part/CMakeFiles/vp_fm.dir/core/partition_state.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/partition_state.cpp.o.d"
  "/root/repo/src/part/core/partitioner.cpp" "src/part/CMakeFiles/vp_fm.dir/core/partitioner.cpp.o" "gcc" "src/part/CMakeFiles/vp_fm.dir/core/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypergraph/CMakeFiles/vp_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
