file(REMOVE_RECURSE
  "libvp_fm.a"
)
