# Empty compiler generated dependencies file for vp_fm.
# This may be replaced when dependencies are built.
