file(REMOVE_RECURSE
  "CMakeFiles/vp_fm.dir/core/balance.cpp.o"
  "CMakeFiles/vp_fm.dir/core/balance.cpp.o.d"
  "CMakeFiles/vp_fm.dir/core/fm_config.cpp.o"
  "CMakeFiles/vp_fm.dir/core/fm_config.cpp.o.d"
  "CMakeFiles/vp_fm.dir/core/fm_refiner.cpp.o"
  "CMakeFiles/vp_fm.dir/core/fm_refiner.cpp.o.d"
  "CMakeFiles/vp_fm.dir/core/gain_container.cpp.o"
  "CMakeFiles/vp_fm.dir/core/gain_container.cpp.o.d"
  "CMakeFiles/vp_fm.dir/core/initial.cpp.o"
  "CMakeFiles/vp_fm.dir/core/initial.cpp.o.d"
  "CMakeFiles/vp_fm.dir/core/multistart.cpp.o"
  "CMakeFiles/vp_fm.dir/core/multistart.cpp.o.d"
  "CMakeFiles/vp_fm.dir/core/partition_state.cpp.o"
  "CMakeFiles/vp_fm.dir/core/partition_state.cpp.o.d"
  "CMakeFiles/vp_fm.dir/core/partitioner.cpp.o"
  "CMakeFiles/vp_fm.dir/core/partitioner.cpp.o.d"
  "libvp_fm.a"
  "libvp_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
