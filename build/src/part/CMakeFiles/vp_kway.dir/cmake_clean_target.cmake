file(REMOVE_RECURSE
  "libvp_kway.a"
)
