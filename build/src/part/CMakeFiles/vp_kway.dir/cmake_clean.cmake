file(REMOVE_RECURSE
  "CMakeFiles/vp_kway.dir/kway/kway_refiner.cpp.o"
  "CMakeFiles/vp_kway.dir/kway/kway_refiner.cpp.o.d"
  "CMakeFiles/vp_kway.dir/kway/kway_state.cpp.o"
  "CMakeFiles/vp_kway.dir/kway/kway_state.cpp.o.d"
  "CMakeFiles/vp_kway.dir/kway/recursive_bisection.cpp.o"
  "CMakeFiles/vp_kway.dir/kway/recursive_bisection.cpp.o.d"
  "libvp_kway.a"
  "libvp_kway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_kway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
