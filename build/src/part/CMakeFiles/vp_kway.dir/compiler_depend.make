# Empty compiler generated dependencies file for vp_kway.
# This may be replaced when dependencies are built.
