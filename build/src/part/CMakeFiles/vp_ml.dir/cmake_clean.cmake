file(REMOVE_RECURSE
  "CMakeFiles/vp_ml.dir/ml/coarsen.cpp.o"
  "CMakeFiles/vp_ml.dir/ml/coarsen.cpp.o.d"
  "CMakeFiles/vp_ml.dir/ml/ml_partitioner.cpp.o"
  "CMakeFiles/vp_ml.dir/ml/ml_partitioner.cpp.o.d"
  "libvp_ml.a"
  "libvp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
