file(REMOVE_RECURSE
  "libvp_eval.a"
)
