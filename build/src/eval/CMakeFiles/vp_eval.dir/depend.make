# Empty dependencies file for vp_eval.
# This may be replaced when dependencies are built.
