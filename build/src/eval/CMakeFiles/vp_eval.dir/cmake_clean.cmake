file(REMOVE_RECURSE
  "CMakeFiles/vp_eval.dir/bsf.cpp.o"
  "CMakeFiles/vp_eval.dir/bsf.cpp.o.d"
  "CMakeFiles/vp_eval.dir/objectives.cpp.o"
  "CMakeFiles/vp_eval.dir/objectives.cpp.o.d"
  "CMakeFiles/vp_eval.dir/pareto.cpp.o"
  "CMakeFiles/vp_eval.dir/pareto.cpp.o.d"
  "CMakeFiles/vp_eval.dir/report.cpp.o"
  "CMakeFiles/vp_eval.dir/report.cpp.o.d"
  "CMakeFiles/vp_eval.dir/significance.cpp.o"
  "CMakeFiles/vp_eval.dir/significance.cpp.o.d"
  "libvp_eval.a"
  "libvp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
