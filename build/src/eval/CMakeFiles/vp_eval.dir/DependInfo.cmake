
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/bsf.cpp" "src/eval/CMakeFiles/vp_eval.dir/bsf.cpp.o" "gcc" "src/eval/CMakeFiles/vp_eval.dir/bsf.cpp.o.d"
  "/root/repo/src/eval/objectives.cpp" "src/eval/CMakeFiles/vp_eval.dir/objectives.cpp.o" "gcc" "src/eval/CMakeFiles/vp_eval.dir/objectives.cpp.o.d"
  "/root/repo/src/eval/pareto.cpp" "src/eval/CMakeFiles/vp_eval.dir/pareto.cpp.o" "gcc" "src/eval/CMakeFiles/vp_eval.dir/pareto.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/eval/CMakeFiles/vp_eval.dir/report.cpp.o" "gcc" "src/eval/CMakeFiles/vp_eval.dir/report.cpp.o.d"
  "/root/repo/src/eval/significance.cpp" "src/eval/CMakeFiles/vp_eval.dir/significance.cpp.o" "gcc" "src/eval/CMakeFiles/vp_eval.dir/significance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/part/CMakeFiles/vp_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/vp_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
