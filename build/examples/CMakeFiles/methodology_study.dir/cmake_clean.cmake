file(REMOVE_RECURSE
  "CMakeFiles/methodology_study.dir/methodology_study.cpp.o"
  "CMakeFiles/methodology_study.dir/methodology_study.cpp.o.d"
  "methodology_study"
  "methodology_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
