# Empty dependencies file for methodology_study.
# This may be replaced when dependencies are built.
