# Empty compiler generated dependencies file for pass_profile.
# This may be replaced when dependencies are built.
