file(REMOVE_RECURSE
  "CMakeFiles/pass_profile.dir/pass_profile.cpp.o"
  "CMakeFiles/pass_profile.dir/pass_profile.cpp.o.d"
  "pass_profile"
  "pass_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
