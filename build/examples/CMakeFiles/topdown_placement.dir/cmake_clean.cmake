file(REMOVE_RECURSE
  "CMakeFiles/topdown_placement.dir/topdown_placement.cpp.o"
  "CMakeFiles/topdown_placement.dir/topdown_placement.cpp.o.d"
  "topdown_placement"
  "topdown_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topdown_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
