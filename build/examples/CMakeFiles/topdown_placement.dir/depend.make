# Empty dependencies file for topdown_placement.
# This may be replaced when dependencies are built.
