file(REMOVE_RECURSE
  "CMakeFiles/vpart.dir/vpart.cpp.o"
  "CMakeFiles/vpart.dir/vpart.cpp.o.d"
  "vpart"
  "vpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
