# Empty dependencies file for vpart.
# This may be replaced when dependencies are built.
