file(REMOVE_RECURSE
  "CMakeFiles/bsf_ranking.dir/bsf_ranking.cpp.o"
  "CMakeFiles/bsf_ranking.dir/bsf_ranking.cpp.o.d"
  "bsf_ranking"
  "bsf_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsf_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
