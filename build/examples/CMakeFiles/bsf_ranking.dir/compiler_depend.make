# Empty compiler generated dependencies file for bsf_ranking.
# This may be replaced when dependencies are built.
