// Top-down placement example — the paper's motivating use model
// (Sec. 2.1): recursive min-cut bisection of a cell-level netlist into a
// coarse placement, with terminal propagation creating exactly the
// fixed-vertex-rich partitioning instances the paper says dominate
// practice.
//
// Reports HPWL, runtime, and the paper's use-model throughput metric
// ("approximately 1 CPU minute per 6000 cells" on 1999 hardware).
//
// Usage:
//   topdown_placement [--case ibm01] [--scale 0.5] [--leaf 24]
//                     [--tolerance 0.1] [--starts 2] [--seed 1]
#include <cmath>
#include <cstdio>

#include "src/flows/topdown_place.h"
#include "src/gen/netlist_gen.h"
#include "src/hypergraph/stats.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/table.h"

using namespace vlsipart;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string case_name = args.get("case", "ibm01");
  const double scale = args.get_double("scale", 0.5);

  const Hypergraph h = generate_netlist(preset(case_name).scaled(scale));
  std::printf("%s\n\n", compute_stats(h).to_string(h.name()).c_str());

  PlacerConfig config;
  config.leaf_cells =
      static_cast<std::size_t>(args.get_int("leaf", 24));
  config.tolerance = args.get_double("tolerance", 0.10);
  config.starts_per_region =
      static_cast<std::size_t>(args.get_int("starts", 2));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const PlacementReport report = topdown_place(h, config);

  // Random-placement baseline for context.
  Placement random;
  random.x.resize(h.num_vertices());
  random.y.resize(h.num_vertices());
  Rng rng(7);
  const double side =
      std::sqrt(static_cast<double>(h.total_vertex_weight()));
  for (std::size_t v = 0; v < h.num_vertices(); ++v) {
    random.x[v] = rng.uniform(0.0, side);
    random.y[v] = rng.uniform(0.0, side);
  }
  const double random_hpwl = hpwl(h, random);

  TextTable table({"metric", "value"});
  table.add_row({"regions bisected", std::to_string(report.regions_partitioned)});
  table.add_row({"fixed terminals created",
                 std::to_string(report.terminals_created)});
  table.add_row({"HPWL (min-cut)", fmt_fixed(report.hpwl, 0)});
  table.add_row({"HPWL (random baseline)", fmt_fixed(random_hpwl, 0)});
  table.add_row({"improvement",
                 fmt_fixed(100.0 * (1.0 - report.hpwl / random_hpwl), 1) +
                     "%"});
  table.add_row({"CPU seconds", fmt_fixed(report.cpu_seconds, 2)});
  const double cells_per_minute =
      static_cast<double>(h.num_vertices()) /
      std::max(report.cpu_seconds / 60.0, 1e-9);
  table.add_row({"cells per CPU minute", fmt_fixed(cells_per_minute, 0)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Use-model context (Sec. 2.1): commercial tools of the paper's era "
      "placed ~6000 cells per CPU minute on a 300MHz Ultra-2.\n"
      "Terminal propagation made %zu of the %zu bisection subproblems "
      "fixed-vertex instances — the dominant case in practice.\n",
      report.terminals_created > 0 ? report.regions_partitioned : 0,
      report.regions_partitioned);
  return 0;
}
