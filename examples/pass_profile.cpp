// FM pass-profile trace — the diagnostic behind Sec. 2.3's "traces of
// CLIP executions show that corking actually occurs fairly often".
//
// Prints, for one start of each engine variant, the cut after every move
// of every pass (plot-ready: move index vs cut, one series per pass).
// A corked CLIP pass shows up as a pass with zero trace points.
//
// Usage:
//   pass_profile [--case ibm01] [--scale 0.25] [--seed 1]
//                [--tolerance 0.02] [--max-points 400]
#include <cstdio>

#include "src/gen/netlist_gen.h"
#include "src/part/core/fm_refiner.h"
#include "src/part/core/initial.h"
#include "src/util/cli.h"

using namespace vlsipart;

namespace {

void run_and_dump(const PartitionProblem& problem, const FmConfig& cfg,
                  const char* label, std::uint64_t seed,
                  std::size_t max_points) {
  Rng rng(seed);
  auto parts = random_initial(problem, rng);
  PartitionState state(*problem.graph);
  state.assign(parts);

  FmConfig traced = cfg;
  traced.record_trace = true;
  FmRefiner refiner(problem, traced);
  const FmResult r = refiner.refine(state, rng);

  std::printf("# engine=%s config=%s\n", label, cfg.to_string().c_str());
  std::printf("# initial cut %lld, final cut %lld, %zu passes, "
              "%zu zero-move (corked) passes\n",
              static_cast<long long>(r.initial_cut),
              static_cast<long long>(r.final_cut), r.passes,
              r.zero_move_passes);
  for (std::size_t p = 0; p < r.pass_traces.size(); ++p) {
    const auto& trace = r.pass_traces[p];
    if (trace.empty()) {
      std::printf("# pass %zu: CORKED (no moves)\n", p + 1);
      continue;
    }
    // Downsample long passes to at most max_points rows.
    const std::size_t stride =
        std::max<std::size_t>(1, trace.size() / max_points);
    std::printf("# pass %zu: %zu moves, cut %lld -> best-prefix %lld\n",
                p + 1, trace.size(),
                static_cast<long long>(r.pass_stats[p].cut_before),
                static_cast<long long>(r.pass_stats[p].cut_after));
    for (std::size_t m = 0; m < trace.size(); m += stride) {
      std::printf("%s %zu %zu %lld\n", label, p + 1, m + 1,
                  static_cast<long long>(trace[m]));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string case_name = args.get("case", "ibm01");
  const double scale = args.get_double("scale", 0.25);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double tolerance = args.get_double("tolerance", 0.02);
  const auto max_points =
      static_cast<std::size_t>(args.get_int("max-points", 400));

  const Hypergraph h = generate_netlist(preset(case_name).scaled(scale));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), tolerance);

  std::printf("# columns: engine pass move cut\n\n");

  FmConfig fm;
  run_and_dump(problem, fm, "FM", seed, max_points);

  FmConfig clip = fm;
  clip.clip = true;
  run_and_dump(problem, clip, "CLIP-as-published", seed, max_points);

  FmConfig fixed = clip;
  fixed.exclude_oversized = true;
  run_and_dump(problem, fixed, "CLIP-with-fix", seed, max_points);
  return 0;
}
