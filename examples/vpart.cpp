// vpart — command-line hypergraph partitioner (shmetis-style tool).
//
// The adoption-path entry point for this library: reads an hMetis .hgr
// file, an ISPD98 .netD/.are pair, or a built-in synthetic preset;
// partitions 2-way or k-way; writes an hMetis-style .part file and
// prints a report with multiple objectives.
//
// Usage:
//   vpart --hgr circuit.hgr      [options]
//   vpart --ispd98 path/ibm01    [options]   (reads .netD/.are)
//   vpart --case ibm01 [--scale 0.5]         (synthetic preset)
// Options:
//   --k 2           number of parts (k > 2 uses recursive bisection)
//   --tolerance 0.02
//   --engine ml|flat|clip|nlevel|evo   (default ml; --help lists them)
//   --starts 4      independent starts (best kept)
//   --vcycles 1     V-cycles applied to the best result (k = 2 only)
//   --seed 1
//   --out out.part  solution file (default <input>.part.<k>)
// FM policy knobs (the paper's Sec. 2.2 implicit decisions, explicit):
//   --tie-break away|part0|toward      --zero-gain all|nonzero
//   --insert-order lifo|fifo|random    --best-choice first|last|balance
//   --illegal-head bucket|side         --look-beyond-first
//   --lookahead R   --lookahead-scan N
//   --max-passes N  --max-moves-past-best N  --exclude-oversized
//   --audit off|pass|moves  --audit-every N
//   --refine-threads N  (1 = serial FM; >1 = synchronous-round parallel)
// Multilevel knobs (ml engine):
//   --initial-tries N  --coarsen-to N  --min-reduction X
//   --coarsen-threads N (1 = serial; >1 = deterministic parallel rating)
// n-level knobs (nlevel engine; shares --coarsen-to/--initial-tries):
//   --max-cluster-weight W  --max-rated-net-size N
//   --local-moves-past-best N  --final-refine 0|1
//   --initial-scheme random|bfs|mixed
// Memetic knobs (evo engine; nests the full ml surface):
//   --population N  --generations N  --offspring N
//   --mutation-period N  --mutation-size N  --evo-threads N
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/eval/objectives.h"
#include "src/gen/netlist_gen.h"
#include "src/hypergraph/stats.h"
#include "src/io/hmetis_io.h"
#include "src/io/ispd98_io.h"
#include "src/io/partition_io.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/evo/evo_partitioner.h"
#include "src/part/kway/recursive_bisection.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/part/nlevel/nlevel_partitioner.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/timer.h"

using namespace vlsipart;

namespace {

/// Engine registry: the closed --engine vocabulary with the one-line
/// descriptions --help prints.
struct EngineInfo {
  const char* name;
  const char* blurb;
};
constexpr EngineInfo kEngines[] = {
    {"ml", "multilevel FM (hMetis-like: coarsen, refine, V-cycle the best)"},
    {"flat", "flat FM with LIFO gain buckets (the paper's baseline)"},
    {"clip", "flat FM with CLIP gain keys and corking"},
    {"nlevel",
     "n-level: one contraction per level, localized FM per uncontraction"},
    {"evo",
     "memetic: population of ml starts evolved by recombination V-cycles"},
};

std::vector<std::string> engine_names() {
  std::vector<std::string> names;
  for (const EngineInfo& e : kEngines) names.push_back(e.name);
  return names;
}

void print_help() {
  std::printf("usage: vpart --hgr FILE | --ispd98 PREFIX | --case NAME "
              "[options]\n\nengines (--engine NAME, default ml):\n");
  for (const EngineInfo& e : kEngines) {
    std::printf("  %-8s %s\n", e.name, e.blurb);
  }
  std::printf("\nsee the header comment of examples/vpart.cpp (or DESIGN.md "
              "\"Knob reference\") for the full option list.\n");
}

/// Map a --flag value to an enum through a (name, value) table; throws
/// with the full vocabulary on an unknown spelling.
template <typename Enum>
Enum parse_choice(const CliArgs& args, const std::string& flag,
                  std::initializer_list<std::pair<const char*, Enum>> table,
                  Enum fallback) {
  const std::string value = args.get(flag, "");
  if (value.empty()) return fallback;
  std::string allowed;
  for (const auto& [name, v] : table) {
    if (value == name) return v;
    if (!allowed.empty()) allowed += "|";
    allowed += name;
  }
  throw std::runtime_error("unknown --" + flag + " (" + allowed +
                           "): " + value);
}

/// The full FM policy surface from flags (defaults = FmConfig defaults).
FmConfig fm_config_from_args(const CliArgs& args) {
  FmConfig fm;
  fm.tie_break = parse_choice(args, "tie-break",
                              {{"away", TieBreak::kAway},
                               {"part0", TieBreak::kPart0},
                               {"toward", TieBreak::kToward}},
                              fm.tie_break);
  fm.zero_gain_update = parse_choice(args, "zero-gain",
                                     {{"all", ZeroGainUpdate::kAll},
                                      {"nonzero", ZeroGainUpdate::kNonzero}},
                                     fm.zero_gain_update);
  fm.insert_order = parse_choice(args, "insert-order",
                                 {{"lifo", InsertOrder::kLifo},
                                  {"fifo", InsertOrder::kFifo},
                                  {"random", InsertOrder::kRandom}},
                                 fm.insert_order);
  fm.best_choice = parse_choice(args, "best-choice",
                                {{"first", BestChoice::kFirst},
                                 {"last", BestChoice::kLast},
                                 {"balance", BestChoice::kBalance}},
                                fm.best_choice);
  fm.illegal_head =
      parse_choice(args, "illegal-head",
                   {{"bucket", IllegalHeadPolicy::kSkipBucket},
                    {"side", IllegalHeadPolicy::kSkipSide}},
                   fm.illegal_head);
  fm.exclude_oversized = args.get_bool("exclude-oversized",
                                       fm.exclude_oversized);
  fm.look_beyond_first = args.get_bool("look-beyond-first",
                                       fm.look_beyond_first);
  fm.lookahead_depth = static_cast<int>(
      args.get_int("lookahead", fm.lookahead_depth));
  fm.lookahead_scan_limit = static_cast<std::size_t>(args.get_int(
      "lookahead-scan", static_cast<std::int64_t>(fm.lookahead_scan_limit)));
  fm.max_passes = static_cast<int>(args.get_int("max-passes",
                                                fm.max_passes));
  fm.max_moves_past_best = static_cast<std::size_t>(args.get_int(
      "max-moves-past-best",
      static_cast<std::int64_t>(fm.max_moves_past_best)));
  fm.audit.mode = parse_choice(args, "audit",
                               {{"off", AuditMode::kOff},
                                {"pass", AuditMode::kPerPass},
                                {"moves", AuditMode::kPerMoves}},
                               fm.audit.mode);
  fm.audit.every_moves = static_cast<std::size_t>(args.get_int(
      "audit-every", static_cast<std::int64_t>(fm.audit.every_moves)));
  fm.refine_threads = static_cast<std::size_t>(args.get_int(
      "refine-threads", static_cast<std::int64_t>(fm.refine_threads)));
  return fm;
}

/// The ml engine's knob surface (also nested inside the evo engine).
MlConfig ml_config_from_args(const CliArgs& args, const FmConfig& fm) {
  MlConfig config;
  config.refine = fm;
  config.initial_tries = static_cast<std::size_t>(args.get_int(
      "initial-tries", static_cast<std::int64_t>(config.initial_tries)));
  config.coarsen.coarsen_to = static_cast<std::size_t>(args.get_int(
      "coarsen-to", static_cast<std::int64_t>(config.coarsen.coarsen_to)));
  config.coarsen.min_reduction =
      args.get_double("min-reduction", config.coarsen.min_reduction);
  config.coarsen.coarsen_threads = static_cast<std::size_t>(args.get_int(
      "coarsen-threads",
      static_cast<std::int64_t>(config.coarsen.coarsen_threads)));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.check_known({"hgr", "ispd98", "case", "scale", "k", "tolerance",
                      "ubfactor", "engine", "starts", "vcycles", "seed",
                      "out", "help", "tie-break", "zero-gain", "insert-order",
                      "best-choice", "illegal-head", "exclude-oversized",
                      "look-beyond-first", "lookahead", "lookahead-scan",
                      "max-passes", "max-moves-past-best", "audit",
                      "audit-every", "initial-tries", "coarsen-to",
                      "min-reduction", "refine-threads", "coarsen-threads",
                      "max-cluster-weight", "max-rated-net-size",
                      "local-moves-past-best", "final-refine",
                      "initial-scheme", "population", "generations",
                      "offspring", "mutation-period", "mutation-size",
                      "evo-threads"});
    if (args.get_bool("help")) {
      print_help();
      return 0;
    }
    Hypergraph h;
    std::string source;
    if (args.has("hgr")) {
      source = args.get("hgr", "");
      h = read_hmetis_file(source);
    } else if (args.has("ispd98")) {
      source = args.get("ispd98", "");
      h = read_ispd98_files(source).hypergraph;
    } else {
      const std::string name = args.get("case", "ibm01");
      source = name;
      h = generate_netlist(
          preset(name).scaled(args.get_double("scale", 0.5)));
    }
    std::printf("%s\n\n", compute_stats(h).to_string(h.name()).c_str());

    const auto k = static_cast<std::size_t>(args.get_int("k", 2));
    // hMetis "UBfactor" parity: UBfactor b means parts within
    // (50 +- b)% of the total, i.e. tolerance = 2b/100.
    double tolerance = args.get_double("tolerance", 0.02);
    if (args.has("ubfactor")) {
      tolerance = 2.0 * args.get_double("ubfactor", 1.0) / 100.0;
    }
    const std::string engine_name = CliArgs::check_known_value(
        "engine", args.get("engine", "ml"), engine_names());
    const auto starts = static_cast<std::size_t>(args.get_int("starts", 4));
    const auto vcycles =
        static_cast<std::size_t>(args.get_int("vcycles", 1));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    FmConfig fm = fm_config_from_args(args);
    if (engine_name == "clip") {
      fm.clip = true;
      fm.exclude_oversized = true;
    }

    std::vector<PartId> parts;
    Weight cut = 0;
    CpuTimer timer;
    if (k == 2) {
      PartitionProblem problem;
      problem.graph = &h;
      problem.balance = BalanceConstraint::from_tolerance(
          h.total_vertex_weight(), tolerance);
      if (engine_name == "ml") {
        MlPartitioner engine(ml_config_from_args(args, fm));
        const MultistartResult r =
            run_hmetis_like(problem, engine, starts, vcycles, seed);
        parts = r.best_parts;
        cut = r.best_cut;
      } else if (engine_name == "nlevel") {
        NlevelConfig config;
        config.refine = fm;
        config.coarsen_to = static_cast<std::size_t>(args.get_int(
            "coarsen-to", static_cast<std::int64_t>(config.coarsen_to)));
        config.max_cluster_weight = args.get_int(
            "max-cluster-weight", config.max_cluster_weight);
        config.max_rated_net_size = static_cast<std::size_t>(args.get_int(
            "max-rated-net-size",
            static_cast<std::int64_t>(config.max_rated_net_size)));
        config.initial_tries = static_cast<std::size_t>(args.get_int(
            "initial-tries",
            static_cast<std::int64_t>(config.initial_tries)));
        config.initial_scheme = parse_choice(args, "initial-scheme",
                                             {{"random", InitialScheme::kRandom},
                                              {"bfs", InitialScheme::kBfs},
                                              {"mixed", InitialScheme::kMixed}},
                                             config.initial_scheme);
        config.local_moves_past_best = static_cast<std::size_t>(args.get_int(
            "local-moves-past-best",
            static_cast<std::int64_t>(config.local_moves_past_best)));
        config.final_refine = args.get_bool("final-refine",
                                            config.final_refine);
        NlevelPartitioner engine(config);
        const MultistartResult r =
            run_multistart(problem, engine, starts, seed);
        parts = r.best_parts;
        cut = r.best_cut;
      } else if (engine_name == "evo") {
        EvoConfig config;
        config.ml = ml_config_from_args(args, fm);
        config.population = static_cast<std::size_t>(args.get_int(
            "population", static_cast<std::int64_t>(config.population)));
        config.generations = static_cast<std::size_t>(args.get_int(
            "generations", static_cast<std::int64_t>(config.generations)));
        config.offspring = static_cast<std::size_t>(args.get_int(
            "offspring", static_cast<std::int64_t>(config.offspring)));
        config.mutation_period = static_cast<std::size_t>(args.get_int(
            "mutation-period",
            static_cast<std::int64_t>(config.mutation_period)));
        config.mutation_size = static_cast<std::size_t>(args.get_int(
            "mutation-size",
            static_cast<std::int64_t>(config.mutation_size)));
        config.evo_threads = static_cast<std::size_t>(args.get_int(
            "evo-threads", static_cast<std::int64_t>(config.evo_threads)));
        EvoPartitioner engine(config);
        const MultistartResult r =
            run_multistart(problem, engine, starts, seed);
        parts = r.best_parts;
        cut = r.best_cut;
      } else {
        FlatFmPartitioner engine(fm);
        const MultistartResult r =
            run_multistart(problem, engine, starts, seed);
        parts = r.best_parts;
        cut = r.best_cut;
      }
      if (parts.empty()) {
        std::fprintf(stderr, "no feasible solution found\n");
        return 1;
      }
      const std::string violation = check_solution(problem, parts);
      if (!violation.empty()) {
        std::fprintf(stderr, "solution audit failed: %s\n",
                     violation.c_str());
        return 1;
      }
    } else {
      if (engine_name == "nlevel" || engine_name == "evo") {
        throw std::runtime_error(
            "--engine " + engine_name +
            " is a bipartitioner; k > 2 (recursive bisection) supports "
            "ml|flat|clip");
      }
      KwayConfig config;
      config.k = k;
      config.tolerance = tolerance;
      config.use_ml = (engine_name == "ml");
      config.fm = fm;
      config.starts_per_level = starts;
      config.seed = seed;
      const KwayResult r = recursive_bisection(h, config);
      parts = r.parts;
      cut = r.cut;
      const std::string violation = check_kway(h, parts, k, tolerance);
      if (!violation.empty()) {
        std::fprintf(stderr, "warning: %s\n", violation.c_str());
      }
    }
    const double cpu = timer.elapsed();

    TextTable report({"metric", "value"});
    report.add_row({"parts", std::to_string(k)});
    report.add_row({"cut", std::to_string(cut)});
    if (k == 2) {
      report.add_row({"ratio cut", fmt_fixed(ratio_cut(h, parts) * 1e9, 3) +
                                       "e-9"});
      report.add_row({"absorption", fmt_fixed(absorption(h, parts), 1)});
      report.add_row(
          {"SOED", std::to_string(sum_of_external_degrees(h, parts))});
    }
    report.add_row({"CPU seconds", fmt_fixed(cpu, 3)});
    std::printf("%s\n", report.to_string().c_str());

    const std::string out = args.get(
        "out", (args.has("hgr") || args.has("ispd98") ? source : h.name()) +
                   ".part." + std::to_string(k));
    write_partition_file(parts, out);
    std::printf("solution written to %s\n", out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vpart: %s\n", e.what());
    return 1;
  }
}
