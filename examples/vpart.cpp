// vpart — command-line hypergraph partitioner (shmetis-style tool).
//
// The adoption-path entry point for this library: reads an hMetis .hgr
// file, an ISPD98 .netD/.are pair, or a built-in synthetic preset;
// partitions 2-way or k-way; writes an hMetis-style .part file and
// prints a report with multiple objectives.
//
// Usage:
//   vpart --hgr circuit.hgr      [options]
//   vpart --ispd98 path/ibm01    [options]   (reads .netD/.are)
//   vpart --case ibm01 [--scale 0.5]         (synthetic preset)
// Options:
//   --k 2           number of parts (k > 2 uses recursive bisection)
//   --tolerance 0.02
//   --engine ml|flat|clip        (default ml)
//   --starts 4      independent starts (best kept)
//   --vcycles 1     V-cycles applied to the best result (k = 2 only)
//   --seed 1
//   --out out.part  solution file (default <input>.part.<k>)
// FM policy knobs (the paper's Sec. 2.2 implicit decisions, explicit):
//   --tie-break away|part0|toward      --zero-gain all|nonzero
//   --insert-order lifo|fifo|random    --best-choice first|last|balance
//   --illegal-head bucket|side         --look-beyond-first
//   --lookahead R   --lookahead-scan N
//   --max-passes N  --max-moves-past-best N  --exclude-oversized
//   --audit off|pass|moves  --audit-every N
//   --refine-threads N  (1 = serial FM; >1 = synchronous-round parallel)
// Multilevel knobs (ml engine):
//   --initial-tries N  --coarsen-to N  --min-reduction X
//   --coarsen-threads N (1 = serial; >1 = deterministic parallel rating)
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/eval/objectives.h"
#include "src/gen/netlist_gen.h"
#include "src/hypergraph/stats.h"
#include "src/io/hmetis_io.h"
#include "src/io/ispd98_io.h"
#include "src/io/partition_io.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/kway/recursive_bisection.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/timer.h"

using namespace vlsipart;

namespace {

/// Map a --flag value to an enum through a (name, value) table; throws
/// with the full vocabulary on an unknown spelling.
template <typename Enum>
Enum parse_choice(const CliArgs& args, const std::string& flag,
                  std::initializer_list<std::pair<const char*, Enum>> table,
                  Enum fallback) {
  const std::string value = args.get(flag, "");
  if (value.empty()) return fallback;
  std::string allowed;
  for (const auto& [name, v] : table) {
    if (value == name) return v;
    if (!allowed.empty()) allowed += "|";
    allowed += name;
  }
  throw std::runtime_error("unknown --" + flag + " (" + allowed +
                           "): " + value);
}

/// The full FM policy surface from flags (defaults = FmConfig defaults).
FmConfig fm_config_from_args(const CliArgs& args) {
  FmConfig fm;
  fm.tie_break = parse_choice(args, "tie-break",
                              {{"away", TieBreak::kAway},
                               {"part0", TieBreak::kPart0},
                               {"toward", TieBreak::kToward}},
                              fm.tie_break);
  fm.zero_gain_update = parse_choice(args, "zero-gain",
                                     {{"all", ZeroGainUpdate::kAll},
                                      {"nonzero", ZeroGainUpdate::kNonzero}},
                                     fm.zero_gain_update);
  fm.insert_order = parse_choice(args, "insert-order",
                                 {{"lifo", InsertOrder::kLifo},
                                  {"fifo", InsertOrder::kFifo},
                                  {"random", InsertOrder::kRandom}},
                                 fm.insert_order);
  fm.best_choice = parse_choice(args, "best-choice",
                                {{"first", BestChoice::kFirst},
                                 {"last", BestChoice::kLast},
                                 {"balance", BestChoice::kBalance}},
                                fm.best_choice);
  fm.illegal_head =
      parse_choice(args, "illegal-head",
                   {{"bucket", IllegalHeadPolicy::kSkipBucket},
                    {"side", IllegalHeadPolicy::kSkipSide}},
                   fm.illegal_head);
  fm.exclude_oversized = args.get_bool("exclude-oversized",
                                       fm.exclude_oversized);
  fm.look_beyond_first = args.get_bool("look-beyond-first",
                                       fm.look_beyond_first);
  fm.lookahead_depth = static_cast<int>(
      args.get_int("lookahead", fm.lookahead_depth));
  fm.lookahead_scan_limit = static_cast<std::size_t>(args.get_int(
      "lookahead-scan", static_cast<std::int64_t>(fm.lookahead_scan_limit)));
  fm.max_passes = static_cast<int>(args.get_int("max-passes",
                                                fm.max_passes));
  fm.max_moves_past_best = static_cast<std::size_t>(args.get_int(
      "max-moves-past-best",
      static_cast<std::int64_t>(fm.max_moves_past_best)));
  fm.audit.mode = parse_choice(args, "audit",
                               {{"off", AuditMode::kOff},
                                {"pass", AuditMode::kPerPass},
                                {"moves", AuditMode::kPerMoves}},
                               fm.audit.mode);
  fm.audit.every_moves = static_cast<std::size_t>(args.get_int(
      "audit-every", static_cast<std::int64_t>(fm.audit.every_moves)));
  fm.refine_threads = static_cast<std::size_t>(args.get_int(
      "refine-threads", static_cast<std::int64_t>(fm.refine_threads)));
  return fm;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    args.check_known({"hgr", "ispd98", "case", "scale", "k", "tolerance",
                      "ubfactor", "engine", "starts", "vcycles", "seed",
                      "out", "tie-break", "zero-gain", "insert-order",
                      "best-choice", "illegal-head", "exclude-oversized",
                      "look-beyond-first", "lookahead", "lookahead-scan",
                      "max-passes", "max-moves-past-best", "audit",
                      "audit-every", "initial-tries", "coarsen-to",
                      "min-reduction", "refine-threads", "coarsen-threads"});
    Hypergraph h;
    std::string source;
    if (args.has("hgr")) {
      source = args.get("hgr", "");
      h = read_hmetis_file(source);
    } else if (args.has("ispd98")) {
      source = args.get("ispd98", "");
      h = read_ispd98_files(source).hypergraph;
    } else {
      const std::string name = args.get("case", "ibm01");
      source = name;
      h = generate_netlist(
          preset(name).scaled(args.get_double("scale", 0.5)));
    }
    std::printf("%s\n\n", compute_stats(h).to_string(h.name()).c_str());

    const auto k = static_cast<std::size_t>(args.get_int("k", 2));
    // hMetis "UBfactor" parity: UBfactor b means parts within
    // (50 +- b)% of the total, i.e. tolerance = 2b/100.
    double tolerance = args.get_double("tolerance", 0.02);
    if (args.has("ubfactor")) {
      tolerance = 2.0 * args.get_double("ubfactor", 1.0) / 100.0;
    }
    const std::string engine_name = args.get("engine", "ml");
    const auto starts = static_cast<std::size_t>(args.get_int("starts", 4));
    const auto vcycles =
        static_cast<std::size_t>(args.get_int("vcycles", 1));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    FmConfig fm = fm_config_from_args(args);
    if (engine_name == "clip") {
      fm.clip = true;
      fm.exclude_oversized = true;
    } else if (engine_name != "ml" && engine_name != "flat") {
      throw std::runtime_error("unknown --engine (ml|flat|clip): " +
                               engine_name);
    }

    std::vector<PartId> parts;
    Weight cut = 0;
    CpuTimer timer;
    if (k == 2) {
      PartitionProblem problem;
      problem.graph = &h;
      problem.balance = BalanceConstraint::from_tolerance(
          h.total_vertex_weight(), tolerance);
      if (engine_name == "ml") {
        MlConfig config;
        config.refine = fm;
        config.initial_tries = static_cast<std::size_t>(args.get_int(
            "initial-tries",
            static_cast<std::int64_t>(config.initial_tries)));
        config.coarsen.coarsen_to = static_cast<std::size_t>(args.get_int(
            "coarsen-to",
            static_cast<std::int64_t>(config.coarsen.coarsen_to)));
        config.coarsen.min_reduction = args.get_double(
            "min-reduction", config.coarsen.min_reduction);
        config.coarsen.coarsen_threads = static_cast<std::size_t>(args.get_int(
            "coarsen-threads",
            static_cast<std::int64_t>(config.coarsen.coarsen_threads)));
        MlPartitioner engine(config);
        const MultistartResult r =
            run_hmetis_like(problem, engine, starts, vcycles, seed);
        parts = r.best_parts;
        cut = r.best_cut;
      } else {
        FlatFmPartitioner engine(fm);
        const MultistartResult r =
            run_multistart(problem, engine, starts, seed);
        parts = r.best_parts;
        cut = r.best_cut;
      }
      if (parts.empty()) {
        std::fprintf(stderr, "no feasible solution found\n");
        return 1;
      }
      const std::string violation = check_solution(problem, parts);
      if (!violation.empty()) {
        std::fprintf(stderr, "solution audit failed: %s\n",
                     violation.c_str());
        return 1;
      }
    } else {
      KwayConfig config;
      config.k = k;
      config.tolerance = tolerance;
      config.use_ml = (engine_name == "ml");
      config.fm = fm;
      config.starts_per_level = starts;
      config.seed = seed;
      const KwayResult r = recursive_bisection(h, config);
      parts = r.parts;
      cut = r.cut;
      const std::string violation = check_kway(h, parts, k, tolerance);
      if (!violation.empty()) {
        std::fprintf(stderr, "warning: %s\n", violation.c_str());
      }
    }
    const double cpu = timer.elapsed();

    TextTable report({"metric", "value"});
    report.add_row({"parts", std::to_string(k)});
    report.add_row({"cut", std::to_string(cut)});
    if (k == 2) {
      report.add_row({"ratio cut", fmt_fixed(ratio_cut(h, parts) * 1e9, 3) +
                                       "e-9"});
      report.add_row({"absorption", fmt_fixed(absorption(h, parts), 1)});
      report.add_row(
          {"SOED", std::to_string(sum_of_external_degrees(h, parts))});
    }
    report.add_row({"CPU seconds", fmt_fixed(cpu, 3)});
    std::printf("%s\n", report.to_string().c_str());

    const std::string out = args.get(
        "out", (args.has("hgr") || args.has("ispd98") ? source : h.name()) +
                   ".part." + std::to_string(k));
    write_partition_file(parts, out);
    std::printf("solution written to %s\n", out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vpart: %s\n", e.what());
    return 1;
  }
}
