// Emit the synthetic ISPD98-like benchmark suite to disk, in hMetis
// .hgr and/or ISPD98 .netD/.are formats, so external tools (hMetis,
// KaHyPar, PaToH, ...) can be run on the exact instances this repo's
// benches use — enabling the "careful contrast to the leading edge"
// the paper demands (Sec. 4).
//
// Usage:
//   make_benchmarks --dir /tmp/suite [--cases ibm01,ibm02] [--scale 1.0]
//                   [--format hgr|ispd98|both]
#include <cstdio>
#include <filesystem>

#include "src/gen/netlist_gen.h"
#include "src/hypergraph/stats.h"
#include "src/io/hmetis_io.h"
#include "src/io/ispd98_io.h"
#include "src/util/cli.h"

using namespace vlsipart;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string dir = args.get("dir", "benchmarks");
  const double scale = args.get_double("scale", 1.0);
  const std::string format = args.get("format", "hgr");
  std::vector<std::string> cases = args.get_list("cases", "");
  if (cases.empty()) cases = ibm_preset_names();

  std::filesystem::create_directories(dir);
  for (const auto& name : cases) {
    const GenConfig config = preset(name).scaled(scale);
    const Hypergraph h = generate_netlist(config);
    std::printf("%s\n", compute_stats(h).to_string(name).c_str());
    if (format == "hgr" || format == "both") {
      write_hmetis_file(h, dir + "/" + name + ".hgr");
    }
    if (format == "ispd98" || format == "both") {
      Ispd98Instance inst;
      inst.hypergraph = h;
      inst.num_cells = config.num_cells;
      inst.num_pads = config.num_pads;
      write_ispd98_files(inst, dir + "/" + name);
    }
  }
  std::printf("\nsuite written to %s/ (%s format, scale %.2f)\n",
              dir.c_str(), format.c_str(), scale);
  return 0;
}
