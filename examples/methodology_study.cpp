// Methodology study: "which improvements are due to improved heuristic
// and which are merely due to chance?" (Brglez [7], cited in Sec. 3.2).
//
// Runs two FM configurations differing in ONE implicit decision on the
// same instance ("Don't change two things at once" [19]), collects
// per-start cut samples, and applies Welch and Mann-Whitney significance
// tests — the statistical discipline the paper asks the community to
// adopt before claiming an improvement.
//
// Usage:
//   methodology_study [--case ibm01] [--scale 0.5] [--runs 30]
//                     [--tolerance 0.02] [--seed 1] [--alpha 0.05]
#include <cstdio>

#include "src/eval/significance.h"
#include "src/gen/netlist_gen.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/util/cli.h"
#include "src/util/table.h"

using namespace vlsipart;

namespace {

Sample collect(const PartitionProblem& problem, const FmConfig& cfg,
               std::size_t runs, std::uint64_t seed) {
  FlatFmPartitioner engine(cfg);
  return run_multistart(problem, engine, runs, seed).cut_sample();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string case_name = args.get("case", "ibm01");
  const double scale = args.get_double("scale", 0.5);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 30));
  const double tolerance = args.get_double("tolerance", 0.02);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double alpha = args.get_double("alpha", 0.05);

  const Hypergraph h = generate_netlist(preset(case_name).scaled(scale));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), tolerance);

  std::printf(
      "Methodology study on %s (%zu vertices), %zu runs per config, "
      "alpha=%.2f\n"
      "One implicit decision varies per experiment; everything else "
      "fixed.\n\n",
      h.name().c_str(), h.num_vertices(), runs, alpha);

  struct Experiment {
    const char* question;
    const char* label_a;
    FmConfig a;
    const char* label_b;
    FmConfig b;
  };
  FmConfig base;  // LIFO, Nonzero, Away — the strong combination

  FmConfig all_dgain = base;
  all_dgain.zero_gain_update = ZeroGainUpdate::kAll;
  FmConfig fifo = base;
  fifo.insert_order = InsertOrder::kFifo;
  FmConfig toward = base;
  toward.tie_break = TieBreak::kToward;
  FmConfig clip = base;
  clip.clip = true;
  clip.exclude_oversized = true;
  FmConfig clip_cork = clip;
  clip_cork.exclude_oversized = false;

  const Experiment experiments[] = {
      {"Does skipping zero-delta-gain updates matter?", "Nonzero", base,
       "All-dgain", all_dgain},
      {"Does LIFO beat FIFO bucket insertion [21]?", "LIFO", base, "FIFO",
       fifo},
      {"Does the tie-break bias matter?", "Away", base, "Toward", toward},
      {"Does CLIP [15] beat plain FM?", "CLIP+fix", clip, "FM", base},
      {"Does the corking fix matter for CLIP?", "CLIP+fix", clip,
       "CLIP as published", clip_cork},
  };

  TextTable table({"question", "verdict"});
  int experiment_seed_offset = 0;
  for (const Experiment& e : experiments) {
    const Sample sample_a =
        collect(problem, e.a, runs, seed + experiment_seed_offset);
    const Sample sample_b =
        collect(problem, e.b, runs, seed + experiment_seed_offset);
    ++experiment_seed_offset;
    std::printf("* %s\n  %s\n\n", e.question,
                describe_comparison(e.label_a, sample_a, e.label_b,
                                    sample_b, alpha)
                    .c_str());
  }

  std::printf(
      "Reading: a \"NOT significant\" verdict means the observed gap is "
      "within run-to-run noise at this sample size — exactly the kind of "
      "difference the paper warns against reporting as an improvement.\n");
  return 0;
}
