// Full comparison report for all four engines on one instance — the
// paper's reporting prescription (Sec. 3.2) in one command: summary
// table, BSF curves, Pareto frontier, significance tests vs a baseline.
//
// Usage:
//   full_report [--case ibm01] [--scale 0.5] [--runs 20] [--seed 1]
//               [--tolerance 0.02] [--baseline 0]
#include <cstdio>

#include "src/eval/report.h"
#include "src/gen/netlist_gen.h"
#include "src/hypergraph/stats.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/util/cli.h"

using namespace vlsipart;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Hypergraph h = generate_netlist(
      preset(args.get("case", "ibm01"))
          .scaled(args.get_double("scale", 0.5)));
  std::printf("%s\n\n", compute_stats(h).to_string(h.name()).c_str());

  PartitionProblem problem;
  problem.graph = &h;
  problem.balance = BalanceConstraint::from_tolerance(
      h.total_vertex_weight(), args.get_double("tolerance", 0.02));

  FmConfig lifo;
  FmConfig clip = lifo;
  clip.clip = true;
  clip.exclude_oversized = true;

  FlatFmPartitioner flat_lifo(lifo, "flat-LIFO");
  FlatFmPartitioner flat_clip(clip, "flat-CLIP");
  MlConfig ml_lifo_cfg;
  ml_lifo_cfg.refine = lifo;
  MlPartitioner ml_lifo(ml_lifo_cfg, "ML-LIFO");
  MlConfig ml_clip_cfg;
  ml_clip_cfg.refine = clip;
  MlPartitioner ml_clip(ml_clip_cfg, "ML-CLIP");

  ComparisonConfig config;
  config.runs = static_cast<std::size_t>(args.get_int("runs", 20));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.baseline =
      static_cast<std::size_t>(args.get_int("baseline", 0));

  const ComparisonReport report = compare_engines(
      problem,
      {{"flat-LIFO", &flat_lifo},
       {"flat-CLIP", &flat_clip},
       {"ML-LIFO", &ml_lifo},
       {"ML-CLIP", &ml_clip}},
      config);
  std::printf("%s", report.to_string().c_str());
  return 0;
}
