// Quickstart: generate an ISPD98-like instance, bipartition it with flat
// FM, CLIP FM and the multilevel engine, and print a comparison.
//
// Usage:
//   quickstart [--case ibm01|small|medium] [--tolerance 0.02]
//              [--starts 4] [--seed 1] [--scale 1.0]
#include <cstdio>

#include "src/gen/netlist_gen.h"
#include "src/hypergraph/stats.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/util/cli.h"
#include "src/util/table.h"

using namespace vlsipart;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string case_name = args.get("case", "small");
  const double tolerance = args.get_double("tolerance", 0.02);
  const auto starts = static_cast<std::size_t>(args.get_int("starts", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double scale = args.get_double("scale", 1.0);

  // 1. Build (or load) a hypergraph.  Generated instances follow the
  //    ISPD98 statistical profile; see src/io/ to load real .hgr/.netD.
  const GenConfig config = preset(case_name).scaled(scale);
  const Hypergraph h = generate_netlist(config);
  std::printf("%s\n\n", compute_stats(h).to_string(h.name()).c_str());

  // 2. Define the problem: 2-way, actual areas, the paper's balance
  //    tolerance (2% -> parts in [49%, 51%] of total area).
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance = BalanceConstraint::from_tolerance(
      h.total_vertex_weight(), tolerance);
  std::printf("balance window: %s\n\n", problem.balance.to_string().c_str());

  // 3. Compare engines under an identical multistart regime.
  TextTable table({"engine", "min cut", "avg cut", "avg cpu (s)"});

  auto report = [&](Bipartitioner& engine) {
    const MultistartResult r =
        run_multistart(problem, engine, starts, seed);
    table.add_row({engine.name(), std::to_string(r.min_cut()),
                   fmt_fixed(r.avg_cut(), 1),
                   fmt_fixed(r.avg_cpu_seconds(), 3)});
  };

  FmConfig lifo;  // defaults: LIFO insertion, Nonzero updates, Away bias
  FlatFmPartitioner flat_lifo(lifo, "flat LIFO FM");
  report(flat_lifo);

  FmConfig clip = lifo;
  clip.clip = true;
  clip.exclude_oversized = true;  // the corking fix of Sec. 2.3
  FlatFmPartitioner flat_clip(clip, "flat CLIP FM");
  report(flat_clip);

  MlConfig ml;
  ml.refine = lifo;
  MlPartitioner ml_lifo(ml, "ML LIFO FM");
  report(ml_lifo);

  MlConfig ml_clip_cfg;
  ml_clip_cfg.refine = clip;
  MlPartitioner ml_clip(ml_clip_cfg, "ML CLIP FM");
  report(ml_clip);

  std::printf("%zu independent starts each, seed %llu:\n\n%s\n", starts,
              static_cast<unsigned long long>(seed),
              table.to_string().c_str());
  std::printf(
      "Expected shape (paper, Table 1): ML CLIP >= ML LIFO >= flat CLIP >= "
      "flat LIFO in solution quality; flat engines are fastest.\n");
  return 0;
}
