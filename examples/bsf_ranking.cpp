// BSF-curve and Pareto-ranking demo (Sec. 3.2 reporting methodology).
//
// Produces, for one instance, the three artifacts the paper prescribes
// for metaheuristic comparison — plot-ready:
//   1. best-so-far curves (expected best cut vs CPU budget) per engine;
//   2. the non-dominated (cost, runtime) frontier across engines;
//   3. a speed-dependent ranking: which engine to run at each budget.
//
// Usage:
//   bsf_ranking [--case ibm01] [--scale 0.5] [--runs 30] [--seed 1]
//               [--tolerance 0.02]
#include <cstdio>

#include "src/eval/bsf.h"
#include "src/eval/pareto.h"
#include "src/gen/netlist_gen.h"
#include "src/part/core/multistart.h"
#include "src/part/core/partitioner.h"
#include "src/part/ml/ml_partitioner.h"
#include "src/util/cli.h"

using namespace vlsipart;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string case_name = args.get("case", "ibm01");
  const double scale = args.get_double("scale", 0.5);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 30));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double tolerance = args.get_double("tolerance", 0.02);

  const Hypergraph h = generate_netlist(preset(case_name).scaled(scale));
  PartitionProblem problem;
  problem.graph = &h;
  problem.balance =
      BalanceConstraint::from_tolerance(h.total_vertex_weight(), tolerance);

  FmConfig lifo;
  FmConfig clip = lifo;
  clip.clip = true;
  clip.exclude_oversized = true;

  struct Engine {
    std::string label;
    bool ml;
    FmConfig cfg;
  };
  const Engine engines[] = {
      {"flat-LIFO", false, lifo},
      {"flat-CLIP", false, clip},
      {"ML-LIFO", true, lifo},
      {"ML-CLIP", true, clip},
  };
  const std::vector<std::size_t> ks = {1, 2, 4, 8, 16, 32};

  std::vector<PerfPoint> points;
  for (const Engine& e : engines) {
    MultistartResult r;
    if (e.ml) {
      MlConfig config;
      config.refine = e.cfg;
      MlPartitioner engine(config);
      r = run_multistart(problem, engine, runs, seed);
    } else {
      FlatFmPartitioner engine(e.cfg);
      r = run_multistart(problem, engine, runs, seed);
    }
    const Sample cuts = r.cut_sample();
    const auto curve = expected_bsf_curve(cuts, r.avg_cpu_seconds(), ks);
    std::printf("%s\n", format_bsf(curve, e.label).c_str());
    for (const BsfPoint& p : curve) {
      points.push_back({p.expected_cost, p.cpu_seconds,
                        e.label + "@" + std::to_string(p.starts)});
    }
  }

  const auto frontier = pareto_frontier(points);
  std::printf("%s\n", format_frontier(frontier).c_str());

  std::vector<double> budgets;
  double max_t = 0.0;
  for (const auto& p : points) max_t = std::max(max_t, p.cpu_seconds);
  for (double b = 0.001; b <= 2.0 * max_t; b *= 2.0) budgets.push_back(b);
  std::printf("# ranking diagram: budget_cpu_sec winner expected_cut\n");
  for (const RankingEntry& e : ranking_diagram(points, budgets)) {
    std::printf("%g %s %g\n", e.budget_cpu_seconds,
                e.winner.empty() ? "-" : e.winner.c_str(), e.winner_cost);
  }
  return 0;
}
